// Phase I decomposition (Benders-style price-and-cut) and the bugfixes it
// flushed out:
//
//   * solve_arrow with ArrowParams::decomposition enabled must agree with
//     the monolithic Phase I — same winners, byte-identical Phase II — and
//     the evaluation sweep's scientific output must not move at all;
//   * Phase I winner selection must be order-independent (the old incumbent
//     scan's +-1e-9 tolerance was non-transitive);
//   * a faulted per-scenario sub-LP must fail the whole ARROW solve and be
//     visible in SweepResult::solve_failures;
//   * the per-solution telemetry totals must equal the exact sum over every
//     LP attempt, master and sub-LPs included.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "controller/controller.h"
#include "sim/sweep.h"
#include "solver/lp.h"
#include "te/arrow.h"
#include "te/basic.h"
#include "topo/builders.h"
#include "traffic/traffic.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace arrow {
namespace {

// Same workload as determinism_test.cc: B4, one calibrated matrix, the
// post-cutoff scenario set.
struct Workload {
  topo::Network net;
  std::vector<traffic::TrafficMatrix> matrices;
  std::vector<scenario::Scenario> scenarios;
  te::TunnelParams tunnels;
  std::unique_ptr<te::TeInput> input;

  Workload() : net(topo::build_b4()) {
    util::Rng rng(404);
    traffic::TrafficParams tp;
    tp.num_matrices = 1;
    matrices = traffic::generate_traffic(net, tp, rng);
    scenario::ScenarioParams sp;
    sp.probability_cutoff = 0.005;
    auto set = scenario::generate_scenarios(net, sp, rng);
    scenarios = scenario::remove_disconnecting(net, set.scenarios);
    tunnels.tunnels_per_flow = 5;
    input = std::make_unique<te::TeInput>(net, matrices[0], scenarios, tunnels);
    input->scale_demands(te::max_satisfiable_scale(*input) * 0.6);
  }

  te::ArrowParams arrow_params(bool decomposition) const {
    te::ArrowParams params;
    params.tickets.num_tickets = 4;
    params.decomposition.enabled = decomposition;
    return params;
  }
};

// Matches the decomposition's per-scenario sub-LP and nothing else in the
// ARROW pipeline: the lowered sub-LP has exactly one slack column per row on
// top of the dp/dm pair per (candidate, failed link) — cols == 3 * rows —
// and every structural cost is 0 or the slack penalty (the master and both
// phase models carry throughput costs and fail the cost scan).
bool is_sub_lp(const solver::Lp& lp, double slack_penalty) {
  if (lp.a.rows <= 0 || lp.a.cols != 3 * lp.a.rows) return false;
  for (double c : lp.cost) {
    if (c != 0.0 && c != slack_penalty) return false;
  }
  return true;
}

// ---- select_phase1_winner: the order-dependence regression ----------------

TEST(WinnerSelection, NonTransitiveSlackChainIsResolvedSetWise) {
  // The chain that broke the old incumbent scan: adjacent slacks are within
  // the 1e-9 tie tolerance but the endpoints are not. Scanning forward the
  // incumbent walked 0 -> 1 -> 2 and crowned candidate 2, whose slack is
  // OUTSIDE the true tie set around the minimum. The set-wise rule fixes the
  // tie set {0, 1} first and only then maximizes restored capacity.
  const std::vector<double> slack = {0.0, 0.9e-9, 1.8e-9};
  const std::vector<double> gbps = {1.0, 2.0, 3.0};
  const std::vector<double> budget = {100.0, 100.0, 100.0};
  EXPECT_EQ(te::select_phase1_winner(slack, gbps, budget), 1);

  // Reversed candidate order must pick the same candidate (now at index 1 by
  // symmetry: slack 0.9e-9, gbps 2).
  const std::vector<double> rslack = {1.8e-9, 0.9e-9, 0.0};
  const std::vector<double> rgbps = {3.0, 2.0, 1.0};
  const int rwin = te::select_phase1_winner(rslack, rgbps, budget);
  ASSERT_GE(rwin, 0);
  EXPECT_EQ(rslack[static_cast<std::size_t>(rwin)], 0.9e-9);
  EXPECT_EQ(rgbps[static_cast<std::size_t>(rwin)], 2.0);
}

TEST(WinnerSelection, BudgetRestrictsTheCandidateSetWhenAnyoneIsInside) {
  // Candidate 0 blows its budget; candidate 1 is inside. The in-budget set
  // wins even though 0 has strictly less slack.
  EXPECT_EQ(te::select_phase1_winner({1.0, 2.0}, {9.0, 1.0}, {0.5, 3.0}), 1);
  // Nobody in budget: fall back to the full set, minimum slack wins.
  EXPECT_EQ(te::select_phase1_winner({1.0, 2.0}, {9.0, 1.0}, {0.1, 0.1}), 0);
  EXPECT_EQ(te::select_phase1_winner({}, {}, {}), -1);
}

TEST(WinnerSelection, ExactDuplicateOfTheWinnerNeverStealsTheSlot) {
  const std::vector<double> slack = {3.0, 1.0, 2.0};
  const std::vector<double> gbps = {5.0, 7.0, 6.0};
  const std::vector<double> budget = {10.0, 10.0, 10.0};
  const int base = te::select_phase1_winner(slack, gbps, budget);
  ASSERT_EQ(base, 1);
  // Append a byte-for-byte copy of the winner: exact ties break toward the
  // lowest index, so the original keeps the slot at every thread count and
  // candidate order.
  std::vector<double> slack2 = slack, gbps2 = gbps, budget2 = budget;
  slack2.push_back(slack[1]);
  gbps2.push_back(gbps[1]);
  budget2.push_back(budget[1]);
  EXPECT_EQ(te::select_phase1_winner(slack2, gbps2, budget2), base);
}

TEST(WinnerSelection, RandomizedSetInvariantsHold) {
  util::Rng rng(1234);
  for (int trial = 0; trial < 500; ++trial) {
    const int n = 1 + static_cast<int>(rng.next_u64() % 8);
    std::vector<double> slack, gbps, budget;
    for (int i = 0; i < n; ++i) {
      // Mix exact ties and near-ties into the slack values.
      const double s = rng.bernoulli(0.3)
                           ? 0.5e-9 * static_cast<double>(rng.next_u64() % 4)
                           : rng.uniform(0.0, 2.0);
      slack.push_back(s);
      gbps.push_back(rng.uniform(0.0, 10.0));
      budget.push_back(rng.uniform(0.0, 2.0));
    }
    const int w = te::select_phase1_winner(slack, gbps, budget);
    ASSERT_GE(w, 0);
    ASSERT_LT(w, n);
    // The candidate set the rule restricted itself to.
    bool any_in_budget = false;
    for (int i = 0; i < n; ++i) {
      any_in_budget = any_in_budget || slack[static_cast<std::size_t>(i)] <=
                                           budget[static_cast<std::size_t>(i)];
    }
    auto in_set = [&](int i) {
      return !any_in_budget || slack[static_cast<std::size_t>(i)] <=
                                   budget[static_cast<std::size_t>(i)];
    };
    ASSERT_TRUE(in_set(w)) << "trial " << trial;
    double min_slack = std::numeric_limits<double>::infinity();
    for (int i = 0; i < n; ++i) {
      if (in_set(i)) {
        min_slack = std::min(min_slack, slack[static_cast<std::size_t>(i)]);
      }
    }
    // Winner sits inside the tie window of the set minimum...
    EXPECT_LE(slack[static_cast<std::size_t>(w)], min_slack + 1e-9)
        << "trial " << trial;
    // ...and no tie-set member strictly beats its restored capacity.
    for (int i = 0; i < n; ++i) {
      if (in_set(i) && slack[static_cast<std::size_t>(i)] <= min_slack + 1e-9) {
        EXPECT_LE(gbps[static_cast<std::size_t>(i)],
                  gbps[static_cast<std::size_t>(w)] + 1e-9)
            << "trial " << trial << " candidate " << i;
      }
    }
  }
}

// ---- decomposed vs monolithic equivalence ---------------------------------

TEST(Decomposition, SolveArrowAgreesWithMonolithicExactly) {
  Workload w;
  util::ThreadPool pool(2);
  util::Rng rng(99);
  const auto prepared =
      te::prepare_arrow(*w.input, w.arrow_params(false), rng, pool);
  const te::RestorabilityCache cache(*w.input, prepared, pool);

  const te::TeSolution mono = te::solve_arrow(*w.input, prepared,
                                              w.arrow_params(false), pool,
                                              &cache);
  const te::TeSolution deco = te::solve_arrow(*w.input, prepared,
                                              w.arrow_params(true), pool,
                                              &cache);
  ASSERT_TRUE(mono.optimal);
  ASSERT_TRUE(deco.optimal);

  // Same winners => identical Phase II model => the cold solves produce the
  // exact same doubles, not merely close ones.
  EXPECT_EQ(deco.winner, mono.winner);
  EXPECT_EQ(deco.objective, mono.objective);
  EXPECT_EQ(deco.admitted, mono.admitted);
  EXPECT_EQ(deco.alloc, mono.alloc);
  ASSERT_EQ(deco.restored.size(), mono.restored.size());
  for (std::size_t q = 0; q < mono.restored.size(); ++q) {
    EXPECT_EQ(deco.restored[q], mono.restored[q]) << "scenario " << q;
  }

  // The decomposed path actually ran its machinery (and the monolithic path
  // reports none of it).
  EXPECT_GT(deco.decomposition_rounds, 0);
  EXPECT_GT(deco.decomposition_sub_solves, 0);
  EXPECT_EQ(mono.decomposition_rounds, 0);
  EXPECT_EQ(mono.decomposition_sub_solves, 0);
  EXPECT_EQ(mono.decomposition_cuts, 0);
}

TEST(Decomposition, Phase1WinnersMatchAndTrajectoryIsThreadCountInvariant) {
  Workload w;
  util::ThreadPool pool1(1);
  util::Rng rng(99);
  const auto prepared =
      te::prepare_arrow(*w.input, w.arrow_params(false), rng, pool1);
  const te::RestorabilityCache cache(*w.input, prepared, pool1);

  const te::Phase1Result mono = te::solve_phase1(
      *w.input, prepared, w.arrow_params(false), pool1, &cache);
  const te::Phase1Result base = te::solve_phase1(
      *w.input, prepared, w.arrow_params(true), pool1, &cache);
  ASSERT_TRUE(mono.optimal);
  ASSERT_TRUE(base.optimal);
  EXPECT_FALSE(mono.decomposed);
  EXPECT_TRUE(base.decomposed);
  EXPECT_EQ(base.winners, mono.winners);
  EXPECT_GT(base.rounds, 0);

  // The decomposition's control flow is a pure function of master solutions
  // extracted on the calling thread: every number it reports — rounds, cuts,
  // iterations, the winners — is byte-identical at any thread count.
  for (int threads : {2, 8}) {
    util::ThreadPool pool(threads);
    const te::Phase1Result got = te::solve_phase1(
        *w.input, prepared, w.arrow_params(true), pool, &cache);
    ASSERT_TRUE(got.optimal) << "threads=" << threads;
    EXPECT_EQ(got.winners, base.winners) << "threads=" << threads;
    EXPECT_EQ(got.objective, base.objective) << "threads=" << threads;
    EXPECT_EQ(got.rounds, base.rounds) << "threads=" << threads;
    EXPECT_EQ(got.cuts_added, base.cuts_added) << "threads=" << threads;
    EXPECT_EQ(got.sub_solves, base.sub_solves) << "threads=" << threads;
    EXPECT_EQ(got.simplex_iterations, base.simplex_iterations)
        << "threads=" << threads;
  }
}

TEST(Decomposition, SweepOutputIsByteIdenticalDecompositionOnOrOff) {
  Workload w;
  sim::SweepParams params;
  params.scales = {0.4, 0.8};
  params.run_arrow_naive = false;  // Phase I is the only thing under test
  params.run_ffc1 = false;
  params.run_ffc2 = false;
  params.run_teavar = false;
  params.run_ecmp = false;
  params.tunnels = w.tunnels;
  params.arrow.tickets.num_tickets = 4;

  util::ThreadPool pool1(1);
  util::Rng rng_off(31);
  const auto off =
      sim::run_sweep(w.net, w.matrices, w.scenarios, params, rng_off, pool1);
  ASSERT_EQ(off.total_solve_failures(), 0);

  params.arrow.decomposition.enabled = true;
  sim::SweepResult on_base;
  for (int threads : {1, 2, 8}) {
    util::ThreadPool pool(threads);
    util::Rng rng(31);
    const auto on =
        sim::run_sweep(w.net, w.matrices, w.scenarios, params, rng, pool);
    // The scientific output does not move when the decomposition flips on:
    // byte-identical availability/throughput and zero solve failures.
    // simplex_iterations legitimately differs across the on/off modes (a
    // different set of LPs runs) — see the sweep.h contract.
    EXPECT_EQ(on.availability.at("ARROW"), off.availability.at("ARROW"))
        << "threads=" << threads;
    EXPECT_EQ(on.throughput.at("ARROW"), off.throughput.at("ARROW"))
        << "threads=" << threads;
    EXPECT_EQ(on.solve_failures.at("ARROW"), off.solve_failures.at("ARROW"))
        << "threads=" << threads;
    // Within the decomposed mode the pivot trail IS thread-count invariant.
    if (threads == 1) {
      on_base = on;
    } else {
      EXPECT_EQ(on.simplex_iterations.at("ARROW"),
                on_base.simplex_iterations.at("ARROW"))
          << "threads=" << threads;
      EXPECT_EQ(on.availability.at("ARROW"), on_base.availability.at("ARROW"))
          << "threads=" << threads;
    }
  }
}

// ---- sub-LP failure surfacing ---------------------------------------------

TEST(Decomposition, FaultedSubLpFailsTheWholeSolve) {
  Workload w;
  const te::ArrowParams params = w.arrow_params(true);
  util::ThreadPool pool(1);  // inline: the observer hook reaches the sub-LPs
  util::Rng rng(99);
  const auto prepared = te::prepare_arrow(*w.input, params, rng, pool);
  const te::RestorabilityCache cache(*w.input, prepared, pool);

  int faulted = 0;
  solver::ScopedSolveObserver observer(
      [&](const solver::Lp& lp, solver::LpSolution& solution) {
        if (faulted == 0 && is_sub_lp(lp, params.slack_penalty)) {
          ++faulted;
          solution.status = solver::LpStatus::kNumericalError;
        }
      });
  const te::TeSolution sol =
      te::solve_arrow(*w.input, prepared, params, pool, &cache);
  ASSERT_EQ(faulted, 1);
  // All-or-nothing, same as the monolithic contract: one poisoned scenario
  // sub-LP invalidates the whole solve rather than silently shipping winners
  // priced against a solver fault.
  EXPECT_FALSE(sol.optimal);
}

TEST(Decomposition, FaultedSubLpLandsInSweepSolveFailures) {
  Workload w;
  sim::SweepParams params;
  params.scales = {0.4, 0.8};
  params.run_arrow_naive = false;
  params.run_ffc1 = false;
  params.run_ffc2 = false;
  params.run_teavar = false;
  params.run_ecmp = false;
  params.tunnels = w.tunnels;
  params.arrow.tickets.num_tickets = 4;
  params.arrow.decomposition.enabled = true;

  util::ThreadPool pool(1);  // sweep chains inline => hooks reach sub-LPs
  int faulted = 0;
  solver::ScopedSolveObserver observer(
      [&](const solver::Lp& lp, solver::LpSolution& solution) {
        if (is_sub_lp(lp, params.arrow.slack_penalty)) {
          ++faulted;
          solution.status = solver::LpStatus::kNumericalError;
        }
      });
  util::Rng rng(31);
  const auto got =
      sim::run_sweep(w.net, w.matrices, w.scenarios, params, rng, pool);
  ASSERT_GT(faulted, 0);
  // Every ARROW solve hit a poisoned sub-LP, so every (scheme, scale) slot
  // reports its failure instead of averaging a zero into the curve.
  const std::vector<int> expect_failed(params.scales.size(), 1);
  EXPECT_EQ(got.solve_failures.at("ARROW"), expect_failed);
  EXPECT_EQ(got.total_solve_failures(),
            static_cast<long long>(params.scales.size()));
  for (double a : got.availability.at("ARROW")) EXPECT_EQ(a, 0.0);
}

// ---- telemetry aggregation ------------------------------------------------

TEST(Decomposition, TelemetryTotalsEqualTheSumOverEveryLpAttempt) {
  Workload w;
  const te::ArrowParams params = w.arrow_params(true);
  util::ThreadPool pool(1);  // inline: the observer sees every solve_lp
  util::Rng rng(99);
  const auto prepared = te::prepare_arrow(*w.input, params, rng, pool);
  const te::RestorabilityCache cache(*w.input, prepared, pool);

  long long iterations = 0, presolve_rows = 0, presolve_cols = 0, pricing = 0;
  int solves = 0;
  te::TeSolution sol;
  {
    solver::ScopedSolveObserver observer(
        [&](const solver::Lp&, solver::LpSolution& solution) {
          ++solves;
          iterations += solution.iterations;
          presolve_rows += solution.presolve_rows_removed;
          presolve_cols += solution.presolve_cols_removed;
          pricing += solution.pricing_candidates;
        });
    sol = te::solve_arrow(*w.input, prepared, params, pool, &cache);
  }
  ASSERT_TRUE(sol.optimal);
  // Master rounds + per-scenario sub-LPs + Phase II, and nothing else: the
  // totals the solution reports are the exact sum of what the solver
  // returned per attempt — not approximately, exactly.
  EXPECT_EQ(static_cast<long long>(sol.simplex_iterations), iterations);
  EXPECT_EQ(static_cast<long long>(sol.presolve_rows_removed), presolve_rows);
  EXPECT_EQ(static_cast<long long>(sol.presolve_cols_removed), presolve_cols);
  EXPECT_EQ(sol.pricing_candidates, pricing);
  // Every master round and every sub-LP solve was a real solve_lp call.
  EXPECT_EQ(solves,
            sol.decomposition_rounds + sol.decomposition_sub_solves + 1);
}

// ---- warm-start chaining --------------------------------------------------

TEST(Decomposition, SubLpBasesChainThroughTheWarmStartCache) {
  Workload w;
  const te::ArrowParams params = w.arrow_params(true);
  util::ThreadPool pool(1);
  util::Rng rng(99);
  const auto prepared = te::prepare_arrow(*w.input, params, rng, pool);
  const te::RestorabilityCache cache(*w.input, prepared, pool);

  solver::ScopedWarmStartCache warm;
  const te::TeSolution first =
      te::solve_arrow(*w.input, prepared, params, pool, &cache);
  const int hits_after_first = warm.hits();
  ASSERT_TRUE(first.optimal);
  EXPECT_GT(warm.stores(), 0);

  const te::TeSolution second =
      te::solve_arrow(*w.input, prepared, params, pool, &cache);
  ASSERT_TRUE(second.optimal);
  // The re-solve warm-started from the first solve's bases (the tagged
  // per-scenario sub-LP entries and Phase II's untagged one)...
  EXPECT_GT(warm.hits(), hits_after_first);
  // ...and warm-starting changed only the pivot path, never the selection or
  // the objective. (The Phase II *vertex* may legally move to an alternate
  // optimum when started from a stored basis, so alloc is not compared.)
  EXPECT_EQ(second.winner, first.winner);
  EXPECT_NEAR(second.objective, first.objective,
              1e-6 * (1.0 + std::abs(first.objective)));
}

TEST(Decomposition, CrossThreadSubLpSolvesShareTheChainCache) {
  // Same as above but with real pool workers: the sub-LPs run on threads
  // whose ambient cache is empty, so the explicit chain-cache plumbing is
  // what carries the bases — and the answer must still match inline mode.
  Workload w;
  const te::ArrowParams params = w.arrow_params(true);
  util::ThreadPool inline_pool(1);
  util::ThreadPool workers(8);
  util::Rng rng(99);
  const auto prepared = te::prepare_arrow(*w.input, params, rng, inline_pool);
  const te::RestorabilityCache cache(*w.input, prepared, inline_pool);

  te::Phase1Result base_first, base_second;
  {
    solver::ScopedWarmStartCache warm;
    base_first =
        te::solve_phase1(*w.input, prepared, params, inline_pool, &cache);
    base_second =
        te::solve_phase1(*w.input, prepared, params, inline_pool, &cache);
  }
  solver::ScopedWarmStartCache warm;
  const te::Phase1Result first =
      te::solve_phase1(*w.input, prepared, params, workers, &cache);
  const int hits_after_first = warm.hits();
  const te::Phase1Result second =
      te::solve_phase1(*w.input, prepared, params, workers, &cache);
  ASSERT_TRUE(first.optimal);
  ASSERT_TRUE(second.optimal);
  EXPECT_GT(warm.hits(), hits_after_first);
  // Bit-identical to the inline-pool chain, warm-start traffic included:
  // where a solve starts must never change where it ends.
  EXPECT_EQ(first.winners, base_first.winners);
  EXPECT_EQ(first.objective, base_first.objective);
  EXPECT_EQ(first.simplex_iterations, base_first.simplex_iterations);
  EXPECT_EQ(second.winners, base_second.winners);
  EXPECT_EQ(second.objective, base_second.objective);
  EXPECT_EQ(second.simplex_iterations, base_second.simplex_iterations);
}

// ---- controller surfacing -------------------------------------------------

TEST(Decomposition, ControllerReportCarriesDecompositionTotals) {
  topo::Network net = topo::build_b4();
  util::Rng traffic_rng(7);
  traffic::TrafficParams tp;
  tp.num_matrices = 1;
  const auto tms = traffic::generate_traffic(net, tp, traffic_rng);

  ctrl::ControllerConfig config;
  config.scheme = ctrl::Scheme::kArrow;
  config.horizon_s = 600.0;
  config.te_interval_s = 600.0;
  config.tunnels.tunnels_per_flow = 4;
  config.arrow.tickets.num_tickets = 4;
  config.arrow.decomposition.enabled = true;
  config.scenarios.probability_cutoff = 0.002;
  config.demand_scale = 0.5;

  util::Rng rng(1);
  const auto report = ctrl::run_controller(net, tms, {}, config, rng);
  EXPECT_GT(report.te_runs, 0);
  // The decomposed Phase I ran and its totals flowed through the ladder
  // accounting into both the report and the serialized RunReport.
  EXPECT_GT(report.te_decomposition_rounds, 0);
  EXPECT_GT(report.te_decomposition_sub_solves, 0);
  EXPECT_EQ(report.run_report.decomposition_rounds,
            report.te_decomposition_rounds);
  EXPECT_EQ(report.run_report.decomposition_sub_solves,
            report.te_decomposition_sub_solves);
  EXPECT_EQ(report.run_report.decomposition_cuts,
            report.te_decomposition_cuts);
}

}  // namespace
}  // namespace arrow
