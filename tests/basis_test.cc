// Direct tests of the LU basis engine against dense linear algebra, plus
// LinExpr/model-building edge cases.
#include <cmath>

#include <gtest/gtest.h>

#include "solver/basis.h"
#include "solver/linexpr.h"
#include "solver/model.h"
#include "util/rng.h"

namespace arrow::solver {
namespace {

// Dense solve of A x = b via Gaussian elimination (reference).
std::vector<double> dense_solve(std::vector<std::vector<double>> a,
                                std::vector<double> b) {
  const int n = static_cast<int>(b.size());
  for (int c = 0; c < n; ++c) {
    int piv = c;
    for (int r = c + 1; r < n; ++r) {
      if (std::abs(a[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)]) >
          std::abs(a[static_cast<std::size_t>(piv)][static_cast<std::size_t>(c)])) {
        piv = r;
      }
    }
    std::swap(a[static_cast<std::size_t>(c)], a[static_cast<std::size_t>(piv)]);
    std::swap(b[static_cast<std::size_t>(c)], b[static_cast<std::size_t>(piv)]);
    for (int r = 0; r < n; ++r) {
      if (r == c) continue;
      const double f = a[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] /
                       a[static_cast<std::size_t>(c)][static_cast<std::size_t>(c)];
      for (int k = c; k < n; ++k) {
        a[static_cast<std::size_t>(r)][static_cast<std::size_t>(k)] -=
            f * a[static_cast<std::size_t>(c)][static_cast<std::size_t>(k)];
      }
      b[static_cast<std::size_t>(r)] -= f * b[static_cast<std::size_t>(c)];
    }
  }
  std::vector<double> x(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] =
        b[static_cast<std::size_t>(i)] /
        a[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)];
  }
  return x;
}

std::vector<LuBasis::Column> to_columns(
    const std::vector<std::vector<double>>& dense) {
  const int n = static_cast<int>(dense.size());
  std::vector<LuBasis::Column> cols(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      if (dense[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] !=
          0.0) {
        cols[static_cast<std::size_t>(j)].emplace_back(
            i, dense[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
      }
    }
  }
  return cols;
}

TEST(LuBasis, IdentityFactorization) {
  LuBasis basis;
  std::vector<LuBasis::Column> cols = {{{0, 1.0}}, {{1, 1.0}}, {{2, 1.0}}};
  ASSERT_TRUE(basis.factorize(3, cols, 1e-10));
  std::vector<double> x = {3.0, -1.0, 2.0};
  basis.ftran(x);
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], -1.0, 1e-12);
  EXPECT_NEAR(x[2], 2.0, 1e-12);
  std::vector<double> y = {1.0, 2.0, 3.0};
  basis.btran(y);
  EXPECT_NEAR(y[1], 2.0, 1e-12);
}

TEST(LuBasis, DetectsSingularMatrix) {
  LuBasis basis;
  // Two identical columns.
  std::vector<LuBasis::Column> cols = {
      {{0, 1.0}, {1, 2.0}}, {{0, 1.0}, {1, 2.0}}};
  EXPECT_FALSE(basis.factorize(2, cols, 1e-10));
}

class LuBasisRandom : public ::testing::TestWithParam<int> {};

TEST_P(LuBasisRandom, FtranBtranMatchDenseSolves) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 41 + 3);
  const int n = rng.uniform_int(3, 25);
  std::vector<std::vector<double>> dense(
      static_cast<std::size_t>(n), std::vector<double>(static_cast<std::size_t>(n), 0.0));
  // Random sparse nonsingular-ish matrix: diagonal + random off-diagonals.
  for (int i = 0; i < n; ++i) {
    dense[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] =
        rng.uniform(1.0, 3.0) * (rng.bernoulli(0.5) ? 1 : -1);
    for (int j = 0; j < n; ++j) {
      if (i != j && rng.bernoulli(0.2)) {
        dense[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            rng.uniform(-2.0, 2.0);
      }
    }
  }
  LuBasis basis;
  ASSERT_TRUE(basis.factorize(n, to_columns(dense), 1e-10));

  // FTRAN: solve B x = b.
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-5.0, 5.0);
  std::vector<double> x = b;
  basis.ftran(x);
  const auto x_ref = dense_solve(dense, b);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)], x_ref[static_cast<std::size_t>(i)],
                1e-8 * (1.0 + std::abs(x_ref[static_cast<std::size_t>(i)])));
  }

  // BTRAN: solve B' y = c  <=>  y = dense_solve(transpose, c).
  std::vector<double> c(static_cast<std::size_t>(n));
  for (auto& v : c) v = rng.uniform(-5.0, 5.0);
  std::vector<double> y = c;
  basis.btran(y);
  std::vector<std::vector<double>> transposed(
      static_cast<std::size_t>(n), std::vector<double>(static_cast<std::size_t>(n)));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      transposed[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          dense[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)];
    }
  }
  const auto y_ref = dense_solve(transposed, c);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], y_ref[static_cast<std::size_t>(i)],
                1e-8 * (1.0 + std::abs(y_ref[static_cast<std::size_t>(i)])));
  }
}

TEST_P(LuBasisRandom, UpdateMatchesRefactorization) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 11);
  const int n = rng.uniform_int(4, 15);
  std::vector<std::vector<double>> dense(
      static_cast<std::size_t>(n), std::vector<double>(static_cast<std::size_t>(n), 0.0));
  for (int i = 0; i < n; ++i) {
    dense[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] =
        rng.uniform(1.0, 3.0);
    for (int j = 0; j < n; ++j) {
      if (i != j && rng.bernoulli(0.25)) {
        dense[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            rng.uniform(-1.5, 1.5);
      }
    }
  }
  LuBasis basis;
  ASSERT_TRUE(basis.factorize(n, to_columns(dense), 1e-10));

  // Replace a column via update(); verify B_new^{-1} b against a fresh
  // factorization of the modified matrix.
  const int pos = rng.uniform_int(0, n - 1);
  std::vector<double> newcol(static_cast<std::size_t>(n));
  for (auto& v : newcol) v = rng.bernoulli(0.4) ? rng.uniform(-2.0, 2.0) : 0.0;
  newcol[static_cast<std::size_t>(pos)] += 2.5;  // keep it nonsingular-ish

  std::vector<double> w = newcol;
  basis.ftran(w);
  if (!basis.update(pos, w, 1e-8)) GTEST_SKIP() << "tiny pivot";

  auto modified = dense;
  for (int i = 0; i < n; ++i) {
    modified[static_cast<std::size_t>(i)][static_cast<std::size_t>(pos)] =
        newcol[static_cast<std::size_t>(i)];
  }
  LuBasis fresh;
  ASSERT_TRUE(fresh.factorize(n, to_columns(modified), 1e-10));

  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-3.0, 3.0);
  std::vector<double> x_updated = b;
  basis.ftran(x_updated);
  std::vector<double> x_fresh = b;
  fresh.ftran(x_fresh);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(x_updated[static_cast<std::size_t>(i)],
                x_fresh[static_cast<std::size_t>(i)],
                1e-7 * (1.0 + std::abs(x_fresh[static_cast<std::size_t>(i)])));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LuBasisRandom, ::testing::Range(0, 10));

TEST(LinExpr, OperatorAlgebra) {
  const VarId x{0}, y{1};
  LinExpr e = 2.0 * LinExpr(x) + LinExpr(y) * 3.0 - LinExpr(x) + 1.5;
  double cx = 0.0, cy = 0.0;
  for (const auto& [v, c] : e.terms()) {
    if (v == x) cx += c;
    if (v == y) cy += c;
  }
  EXPECT_DOUBLE_EQ(cx, 1.0);
  EXPECT_DOUBLE_EQ(cy, 3.0);
  EXPECT_DOUBLE_EQ(e.constant(), 1.5);
}

TEST(Model, DuplicateTermsAreMerged) {
  Model m;
  m.set_maximize();
  const auto x = m.add_var(0, 10, 1);
  LinExpr e;
  e.add_term(x, 1.0);
  e.add_term(x, 1.0);  // 2x <= 10 total
  m.add_constr(e, Sense::kLe, 10);
  ASSERT_EQ(m.solve().status, SolveStatus::kOptimal);
  EXPECT_NEAR(m.value(x), 5.0, 1e-7);
}

TEST(Model, ConstantsFoldIntoRhs) {
  Model m;
  m.set_maximize();
  const auto x = m.add_var(0, 100, 1);
  m.add_constr(LinExpr(x) + 3.0, Sense::kLe, 10);  // x <= 7
  ASSERT_EQ(m.solve().status, SolveStatus::kOptimal);
  EXPECT_NEAR(m.value(x), 7.0, 1e-7);
}

TEST(Model, IterationLimitSurfaces) {
  Model m;
  m.set_maximize();
  m.simplex_options().max_iterations = 1;
  std::vector<VarId> xs;
  for (int i = 0; i < 20; ++i) xs.push_back(m.add_var(0, 1, 1));
  LinExpr sum;
  for (const auto& v : xs) sum.add_term(v, 1.0);
  m.add_constr(sum, Sense::kLe, 5);
  EXPECT_EQ(m.solve().status, SolveStatus::kIterationLimit);
}

TEST(Model, SetBoundsTightensSolution) {
  Model m;
  m.set_maximize();
  const auto x = m.add_var(0, 10, 1);
  m.add_constr(LinExpr(x), Sense::kLe, 8);
  ASSERT_EQ(m.solve().status, SolveStatus::kOptimal);
  EXPECT_NEAR(m.value(x), 8.0, 1e-7);
  m.set_bounds(x, 0, 3);
  ASSERT_EQ(m.solve().status, SolveStatus::kOptimal);
  EXPECT_NEAR(m.value(x), 3.0, 1e-7);
}

TEST(Model, MinimizeDualSign) {
  // min x st x >= 4: dual of the >= row is 1 (cost decreases as rhs drops).
  Model m;
  const auto x = m.add_var(0, kInf, 1);
  m.add_constr(LinExpr(x), Sense::kGe, 4);
  ASSERT_EQ(m.solve().status, SolveStatus::kOptimal);
  EXPECT_NEAR(m.dual(0), 1.0, 1e-7);
}

}  // namespace
}  // namespace arrow::solver
