// Tests for the evaluation layer: availability metric, link loads, the
// router-port cost model, the failure-ticket study, and demand sweeps.
#include <algorithm>
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "sim/availability.h"
#include "sim/cost.h"
#include "sim/sweep.h"
#include "sim/tickets.h"
#include "solver/lp.h"
#include "te/arrow.h"
#include "te/basic.h"
#include "te/ffc.h"
#include "topo/builders.h"
#include "traffic/traffic.h"
#include "util/parallel.h"
#include "util/stats.h"

namespace arrow::sim {
namespace {

class SimFixture : public ::testing::Test {
 protected:
  SimFixture() : net_(topo::build_b4()) {
    util::Rng rng(303);
    traffic::TrafficParams tp;
    tp.num_matrices = 1;
    matrices_ = traffic::generate_traffic(net_, tp, rng);
    scenario::ScenarioParams sp;
    sp.probability_cutoff = 0.001;
    auto set = scenario::generate_scenarios(net_, sp, rng);
    scenarios_ = scenario::remove_disconnecting(net_, set.scenarios);
    te::TunnelParams tun;
    tun.tunnels_per_flow = 6;
    input_ = std::make_unique<te::TeInput>(net_, matrices_[0], scenarios_, tun);
    input_->scale_demands(te::max_satisfiable_scale(*input_));
  }
  topo::Network net_;
  std::vector<traffic::TrafficMatrix> matrices_;
  std::vector<scenario::Scenario> scenarios_;
  std::unique_ptr<te::TeInput> input_;
};

TEST_F(SimFixture, AvailabilityIsAProbabilityWeightedSatisfaction) {
  input_->scale_demands(0.5);
  const te::TeSolution sol = te::solve_ffc(*input_, te::FfcParams{1, 0});
  ASSERT_TRUE(sol.optimal);
  const Evaluation eval = evaluate(*input_, sol);
  EXPECT_GE(eval.availability, 0.0);
  EXPECT_LE(eval.availability, 1.0 + 1e-9);
  EXPECT_EQ(eval.per_scenario.size(),
            static_cast<std::size_t>(input_->num_scenarios()));
  // Hand-computed: healthy mass * healthy sat + sum p_q * sat_q.
  double mass = 0.0, weighted = 0.0;
  for (int q = 0; q < input_->num_scenarios(); ++q) {
    const double p = input_->scenarios()[static_cast<std::size_t>(q)].probability;
    mass += p;
    weighted += p * eval.per_scenario[static_cast<std::size_t>(q)];
  }
  EXPECT_NEAR(eval.availability,
              (1.0 - mass) * eval.healthy_satisfaction + weighted, 1e-9);
}

TEST_F(SimFixture, HealthySatisfactionIsFullAtLowLoad) {
  input_->scale_demands(0.5);
  const te::TeSolution sol = te::solve_max_throughput(*input_);
  ASSERT_TRUE(sol.optimal);
  EXPECT_NEAR(scenario_satisfaction(*input_, sol, -1), 1.0, 1e-4);  // eps-weights shift a hair
}

TEST_F(SimFixture, FailuresOnlyHurt) {
  input_->scale_demands(0.7);
  const te::TeSolution sol = te::solve_max_throughput(*input_);
  ASSERT_TRUE(sol.optimal);
  const double healthy = scenario_satisfaction(*input_, sol, -1);
  for (int q = 0; q < input_->num_scenarios(); ++q) {
    EXPECT_LE(scenario_satisfaction(*input_, sol, q), healthy + 1e-9);
  }
}

TEST_F(SimFixture, EcmpOversubscriptionIsScaledNotIgnored) {
  input_->scale_demands(3.0);  // way past saturation
  const te::TeSolution sol = te::solve_ecmp(*input_);
  const double sat = scenario_satisfaction(*input_, sol, -1);
  EXPECT_LT(sat, 0.9);  // losses appear
  EXPECT_GT(sat, 0.1);  // but traffic still flows
  // Delivered loads never exceed capacity.
  const auto loads = link_loads(*input_, sol, -1);
  for (std::size_t e = 0; e < loads.size(); ++e) {
    EXPECT_LE(loads[e], net_.ip_links[e].capacity_gbps() + 1e-6);
  }
}

TEST_F(SimFixture, RestoredCapacityCountsInScenarios) {
  input_->scale_demands(0.6);
  te::ArrowParams ap;
  ap.tickets.num_tickets = 6;
  util::Rng rng(17);
  const auto prepared = te::prepare_arrow(*input_, ap, rng);
  const te::TeSolution arrow_sol = te::solve_arrow(*input_, prepared, ap);
  ASSERT_TRUE(arrow_sol.optimal);
  // Loads on restored links stay within the restored capacity.
  for (int q = 0; q < input_->num_scenarios(); ++q) {
    const auto loads = link_loads(*input_, arrow_sol, q);
    for (const auto& [e, r] :
         arrow_sol.restored[static_cast<std::size_t>(q)]) {
      EXPECT_LE(loads[static_cast<std::size_t>(e)], r + 1e-4);
    }
  }
}

TEST_F(SimFixture, DeadTunnelsCarryNothing) {
  input_->scale_demands(0.6);
  const te::TeSolution sol = te::solve_ffc(*input_, te::FfcParams{1, 0});
  ASSERT_TRUE(sol.optimal);
  for (int q = 0; q < std::min(5, input_->num_scenarios()); ++q) {
    const auto loads = link_loads(*input_, sol, q);
    for (topo::IpLinkId e : input_->failed_links(q)) {
      EXPECT_DOUBLE_EQ(loads[static_cast<std::size_t>(e)], 0.0);
    }
  }
}

TEST_F(SimFixture, CostModelBasics) {
  input_->scale_demands(0.6);
  const te::TeSolution sol = te::solve_ffc(*input_, te::FfcParams{1, 0});
  ASSERT_TRUE(sol.optimal);
  const CostResult cost = compute_cost(*input_, sol, 0.999);
  EXPECT_GT(cost.cap_total, 0.0);
  EXPECT_GT(cost.availability_guaranteed_throughput, 0.0);
  EXPECT_LE(cost.availability_guaranteed_throughput, 1.0 + 1e-9);
  EXPECT_GE(cost.normalized_ports, cost.cap_total - 1e-6);
}

TEST_F(SimFixture, FullyRestorableBaselineNeedsFewestPorts) {
  input_->scale_demands(0.6);
  const CostResult baseline = fully_restorable_baseline(*input_);
  const CostResult ffc = compute_cost(
      *input_, te::solve_ffc(*input_, te::FfcParams{1, 0}), 0.999);
  // Failure-aware TEs over-provision; the hypothetical fully-restorable TE
  // does not (Fig. 16's key point).
  EXPECT_LE(baseline.normalized_ports, ffc.normalized_ports + 1e-6);
}

TEST(Tickets, CalibratedToPaperHeadlines) {
  const topo::Network net = topo::build_fbsynth();
  util::Rng rng(42);
  TicketStudyParams p;
  const auto tickets = generate_tickets(net, p, rng);
  ASSERT_EQ(tickets.size(), 600u);
  // Fiber-cut MTTR: median above ~9 hours, >= 10% beyond a day (Fig. 3a).
  std::vector<double> cut_mttr;
  for (const auto& t : tickets) {
    if (t.cause == RootCause::kFiberCut) {
      cut_mttr.push_back(t.duration_hours);
      EXPECT_GE(t.fiber, 0);
      EXPECT_GE(t.lost_gbps, 0.0);
    }
  }
  ASSERT_GT(cut_mttr.size(), 100u);
  EXPECT_GT(util::percentile(cut_mttr, 50.0), 7.0);
  EXPECT_GT(util::percentile(cut_mttr, 90.0), 20.0);
  // Fiber cuts dominate downtime (~67% in Fig. 3b).
  for (const auto& [cause, share] : downtime_share(tickets)) {
    if (cause == RootCause::kFiberCut) {
      EXPECT_GT(share, 0.5);
      EXPECT_LT(share, 0.85);
    }
  }
}

// Regression: repairs drawn near the end of the observation window used to
// extend past it, counting downtime the study never observes and inflating
// downtime_share. Durations must be clipped to the window.
TEST(Tickets, DurationsAreClippedToTheObservationWindow) {
  const topo::Network net = topo::build_fbsynth();
  util::Rng rng(44);
  TicketStudyParams p;
  p.num_tickets = 400;
  p.window_hours = 48.0;  // lognormal MTTR (median ~9 h) overruns this often
  const auto tickets = generate_tickets(net, p, rng);
  ASSERT_EQ(tickets.size(), 400u);
  bool clip_engaged = false;
  double total_downtime = 0.0;
  for (const auto& t : tickets) {
    EXPECT_GE(t.start_hours, 0.0);
    EXPECT_LE(t.start_hours, p.window_hours);
    EXPECT_GE(t.duration_hours, 0.0);
    EXPECT_LE(t.start_hours + t.duration_hours, p.window_hours + 1e-9);
    clip_engaged |=
        t.start_hours + t.duration_hours > p.window_hours - 1e-9;
    total_downtime += t.duration_hours;
  }
  EXPECT_TRUE(clip_engaged);  // the short window must actually clip someone
  // downtime_share over clipped tickets still partitions the total.
  double share_sum = 0.0;
  for (const auto& [cause, share] : downtime_share(tickets)) {
    EXPECT_GE(share, 0.0);
    share_sum += share;
  }
  EXPECT_NEAR(share_sum, 1.0, 1e-9);
  EXPECT_LE(total_downtime,
            static_cast<double>(tickets.size()) * p.window_hours);
}

TEST(Tickets, DegenerateParamsAreRejected) {
  const topo::Network net = topo::build_b4();
  util::Rng rng(45);
  TicketStudyParams p;
  p.num_tickets = -1;
  EXPECT_THROW(generate_tickets(net, p, rng), std::logic_error);
  p.num_tickets = 10;
  p.window_hours = 0.0;
  EXPECT_THROW(generate_tickets(net, p, rng), std::logic_error);
  p.window_hours = -24.0;
  EXPECT_THROW(generate_tickets(net, p, rng), std::logic_error);
  // Zero tickets is a valid (empty) study, not an error.
  p.num_tickets = 0;
  p.window_hours = 24.0;
  EXPECT_TRUE(generate_tickets(net, p, rng).empty());
}

TEST(Tickets, LostCapacityMatchesProvisioning) {
  const topo::Network net = topo::build_fbsynth();
  util::Rng rng(43);
  TicketStudyParams p;
  p.num_tickets = 100;
  const auto tickets = generate_tickets(net, p, rng);
  for (const auto& t : tickets) {
    if (t.cause == RootCause::kFiberCut) {
      EXPECT_DOUBLE_EQ(t.lost_gbps, net.provisioned_gbps(t.fiber));
    }
  }
}

TEST(Sweep, MaxScaleInterpolates) {
  SweepResult r;
  r.scales = {1.0, 2.0, 3.0};
  r.schemes = {"X"};
  r.availability["X"] = {1.0, 0.8, 0.2};
  EXPECT_NEAR(r.max_scale_at("X", 0.9), 1.5, 1e-9);
  EXPECT_NEAR(r.max_scale_at("X", 0.99999), 1.0, 0.01);
  EXPECT_NEAR(r.max_scale_at("X", 0.1), 3.0, 1e-9);
  EXPECT_THROW(r.max_scale_at("Y", 0.5), std::logic_error);
}

TEST(Sweep, MaxScaleFirstCrossing) {
  // Non-monotone curve (solver noise at high scales): the answer is the
  // FIRST downward crossing. A later re-ascent above the target must not
  // resurrect a larger scale.
  SweepResult r;
  r.scales = {1.0, 2.0, 3.0, 4.0};
  r.schemes = {"X"};
  r.availability["X"] = {1.0, 0.5, 0.95, 0.2};
  // Crossing 0.9 happens between scales 1 and 2: 1 + (1.0-0.9)/(1.0-0.5).
  EXPECT_NEAR(r.max_scale_at("X", 0.9), 1.2, 1e-9);
  // Even the smallest scale misses the target -> 0.
  EXPECT_NEAR(r.max_scale_at("X", 1.5), 0.0, 1e-12);
  // Never drops below the target -> last grid scale.
  EXPECT_NEAR(r.max_scale_at("X", 0.1), 4.0, 1e-12);
}

TEST(Sweep, SmallEndToEndRun) {
  const topo::Network net = topo::build_b4();
  util::Rng rng(7);
  traffic::TrafficParams tp;
  tp.num_matrices = 1;
  const auto matrices = traffic::generate_traffic(net, tp, rng);
  scenario::ScenarioParams sp;
  sp.probability_cutoff = 0.005;
  auto set = scenario::generate_scenarios(net, sp, rng);
  const auto scenarios = scenario::remove_disconnecting(net, set.scenarios);

  SweepParams params;
  params.scales = {0.4, 0.8};
  params.run_ffc2 = false;  // keep the test fast
  params.tunnels.tunnels_per_flow = 5;
  params.arrow.tickets.num_tickets = 4;
  const SweepResult result = run_sweep(net, matrices, scenarios, params, rng);

  for (const auto& scheme : result.schemes) {
    const auto& avail = result.availability.at(scheme);
    ASSERT_EQ(avail.size(), 2u);
    for (double a : avail) {
      EXPECT_GE(a, 0.0);
      EXPECT_LE(a, 1.0 + 1e-9);
    }
    // Higher load never improves availability.
    EXPECT_GE(avail[0], avail[1] - 1e-6) << scheme;
  }
  // ARROW at low scale should be at least as available as FFC-1.
  EXPECT_GE(result.availability.at("ARROW")[0],
            result.availability.at("FFC-1")[0] - 1e-6);
}


TEST_F(SimFixture, StateDeliveryMatchesScenarioView) {
  input_->scale_demands(0.6);
  const te::TeSolution sol = te::solve_ffc(*input_, te::FfcParams{1, 0});
  ASSERT_TRUE(sol.optimal);
  // Healthy state.
  const auto healthy = state_delivery(*input_, sol, {}, {});
  EXPECT_NEAR(healthy.satisfaction, scenario_satisfaction(*input_, sol, -1),
              1e-9);
  // Each scenario with no restoration matches the indexed view.
  for (int q = 0; q < std::min(5, input_->num_scenarios()); ++q) {
    const auto st = state_delivery(
        *input_, sol, input_->scenarios()[static_cast<std::size_t>(q)].cuts,
        {});
    EXPECT_NEAR(st.satisfaction, scenario_satisfaction(*input_, sol, q),
                1e-9)
        << "scenario " << q;
  }
}

TEST_F(SimFixture, StateDeliveryRestorationMonotone) {
  input_->scale_demands(0.8);
  const te::TeSolution sol = te::solve_max_throughput(*input_);
  ASSERT_TRUE(sol.optimal);
  const auto cuts = input_->scenarios()[0].cuts;
  const auto failed = net_.failed_ip_links(cuts);
  if (failed.empty()) GTEST_SKIP();
  // Ramping restored capacity up never reduces delivery.
  double prev = -1.0;
  for (double frac : {0.0, 0.25, 0.5, 1.0}) {
    std::map<topo::IpLinkId, double> restored;
    for (topo::IpLinkId e : failed) {
      restored[e] =
          frac * net_.ip_links[static_cast<std::size_t>(e)].capacity_gbps();
    }
    const auto st = state_delivery(*input_, sol, cuts, restored);
    EXPECT_GE(st.delivered_gbps, prev - 1e-6);
    prev = st.delivered_gbps;
  }
}

TEST_F(SimFixture, OverRestoringTicketIsClampedToLinkCapacity) {
  // Regression: the scenario-indexed delivery path (delivered_alloc) used to
  // take a ticket's restored gbps at face value, so a ticket whose surrogate
  // waves exceeded the original link let a failed link deliver MORE than its
  // provisioned capacity. state_delivery always clamped; the two paths must
  // agree.
  input_->scale_demands(3.0);  // over-subscribe so the clamp is load-bearing
  te::TeSolution sol = te::solve_ecmp(*input_);
  const auto& failed = input_->failed_links(0);
  if (failed.empty()) GTEST_SKIP();
  sol.restored.resize(static_cast<std::size_t>(input_->num_scenarios()));
  te::TeSolution exact = sol;
  for (topo::IpLinkId e : failed) {
    const double cap =
        net_.ip_links[static_cast<std::size_t>(e)].capacity_gbps();
    sol.restored[0][e] = 50.0 * cap;  // over-restoring ticket
    exact.restored[0][e] = cap;       // physically attainable plan
  }
  EXPECT_DOUBLE_EQ(scenario_satisfaction(*input_, sol, 0),
                   scenario_satisfaction(*input_, exact, 0));
  // Delivered load on a restored link never exceeds the IP link itself.
  const auto loads = link_loads(*input_, sol, 0);
  for (topo::IpLinkId e : failed) {
    EXPECT_LE(loads[static_cast<std::size_t>(e)],
              net_.ip_links[static_cast<std::size_t>(e)].capacity_gbps() +
                  1e-6);
  }
}

TEST(Sweep, SolveFailuresAreCountedAndExcludedFromMeans) {
  // Regression: a chain solve that came back non-optimal used to be averaged
  // into the availability mean as 0.0 — silently dragging the curve down.
  // Now the slot is excluded from the mean and the failure is counted.
  const topo::Network net = topo::build_b4();
  util::Rng rng(9);
  traffic::TrafficParams tp;
  tp.num_matrices = 2;
  const auto matrices = traffic::generate_traffic(net, tp, rng);
  scenario::ScenarioParams sp;
  sp.probability_cutoff = 0.005;
  auto set = scenario::generate_scenarios(net, sp, rng);
  const auto scenarios = scenario::remove_disconnecting(net, set.scenarios);

  SweepParams params;
  params.scales = {0.5};
  params.run_arrow = false;
  params.run_arrow_naive = false;
  params.run_ffc2 = false;
  params.run_teavar = false;
  params.run_ecmp = false;  // FFC-1 only: one LP per calibration + chain
  params.warm_start = false;
  params.tunnels.tunnels_per_flow = 5;

  // Baseline: matrix 1 alone, no faults.
  util::ThreadPool inline_pool(1);
  util::Rng rng_base(1);
  const SweepResult clean =
      run_sweep(net, {matrices[1]}, scenarios, params, rng_base, inline_pool);
  ASSERT_EQ(clean.total_solve_failures(), 0);

  // Faulted run over both matrices, inline so the thread-local observer sees
  // every solve. Solve order with ThreadPool(1): calibration m0, calibration
  // m1, chain m0, chain m1 — index 2 is matrix 0's FFC-1 solve.
  int solve_idx = 0;
  solver::ScopedSolveObserver fail_third(
      [&](const solver::Lp&, solver::LpSolution& s) {
        if (solve_idx++ == 2) s.status = solver::LpStatus::kIterationLimit;
      });
  util::Rng rng_fault(1);
  const SweepResult faulted =
      run_sweep(net, matrices, scenarios, params, rng_fault, inline_pool);
  EXPECT_EQ(faulted.solve_failures.at("FFC-1")[0], 1);
  EXPECT_EQ(faulted.total_solve_failures(), 1);
  // The mean over the surviving matrix equals matrix 1's own value — the
  // failed matrix 0 slot contributes neither a 0.0 nor a divisor.
  EXPECT_DOUBLE_EQ(faulted.availability.at("FFC-1")[0],
                   clean.availability.at("FFC-1")[0]);
  EXPECT_DOUBLE_EQ(faulted.throughput.at("FFC-1")[0],
                   clean.throughput.at("FFC-1")[0]);
}

TEST_F(SimFixture, StateDeliveryRestoredCapacityIsClamped) {
  input_->scale_demands(0.5);
  const te::TeSolution sol = te::solve_max_throughput(*input_);
  ASSERT_TRUE(sol.optimal);
  const auto cuts = input_->scenarios()[0].cuts;
  const auto failed = net_.failed_ip_links(cuts);
  if (failed.empty()) GTEST_SKIP();
  // Absurdly large restored capacity must not beat the healthy state.
  std::map<topo::IpLinkId, double> restored;
  for (topo::IpLinkId e : failed) restored[e] = 1e9;
  const auto st = state_delivery(*input_, sol, cuts, restored);
  const auto healthy = state_delivery(*input_, sol, {}, {});
  EXPECT_LE(st.delivered_gbps, healthy.delivered_gbps + 1e-6);
}

}  // namespace
}  // namespace arrow::sim
