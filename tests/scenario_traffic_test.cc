// Tests for probabilistic fiber-cut scenario generation and gravity-model
// traffic matrices.
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "scenario/scenario.h"
#include "topo/builders.h"
#include "traffic/traffic.h"

namespace arrow {
namespace {

TEST(Scenario, ProbabilitiesFormAValidSubdistribution) {
  const topo::Network net = topo::build_b4();
  util::Rng rng(5);
  scenario::ScenarioParams p;
  p.probability_cutoff = 1e-6;  // keep almost everything
  const auto set = scenario::generate_scenarios(net, p, rng);
  double total = set.no_failure_probability;
  for (const auto& s : set.scenarios) {
    EXPECT_GT(s.probability, 0.0);
    total += s.probability;
  }
  // Singles + doubles + none is a strict subset of the event space.
  EXPECT_LE(total, 1.0 + 1e-9);
  EXPECT_GT(total, 0.5);
  EXPECT_NEAR(set.covered_probability(), total, 1e-12);
}

TEST(Scenario, SingleCutProbabilityFormula) {
  const topo::Network net = topo::build_b4();
  util::Rng rng(6);
  scenario::ScenarioParams p;
  p.probability_cutoff = 0.0;
  p.include_double_cuts = false;
  const auto set = scenario::generate_scenarios(net, p, rng);
  ASSERT_EQ(set.scenarios.size(), net.optical.fibers.size());
  for (const auto& s : set.scenarios) {
    const double pf =
        set.fiber_fail_prob[static_cast<std::size_t>(s.cuts[0])];
    const double expect = set.no_failure_probability * pf / (1.0 - pf);
    EXPECT_NEAR(s.probability, expect, 1e-12);
  }
}

TEST(Scenario, CutoffFiltersLowProbability) {
  const topo::Network net = topo::build_ibm();
  util::Rng rng(7);
  scenario::ScenarioParams p;
  p.probability_cutoff = 0.01;
  const auto set = scenario::generate_scenarios(net, p, rng);
  for (const auto& s : set.scenarios) {
    EXPECT_GE(s.probability, p.probability_cutoff);
  }
}

TEST(Scenario, SortedByProbabilityDescending) {
  const topo::Network net = topo::build_fbsynth();
  util::Rng rng(8);
  scenario::ScenarioParams p;
  p.probability_cutoff = 1e-5;
  const auto set = scenario::generate_scenarios(net, p, rng);
  for (std::size_t i = 1; i < set.scenarios.size(); ++i) {
    EXPECT_GE(set.scenarios[i - 1].probability,
              set.scenarios[i].probability);
  }
}

TEST(Scenario, DoubleCutsAppearWhenProbable) {
  const topo::Network net = topo::build_b4();
  util::Rng rng(9);
  scenario::ScenarioParams p;
  p.probability_cutoff = 1e-9;
  const auto set = scenario::generate_scenarios(net, p, rng);
  int doubles = 0;
  for (const auto& s : set.scenarios) doubles += s.cuts.size() == 2 ? 1 : 0;
  EXPECT_EQ(doubles, 19 * 18 / 2);
}

TEST(Scenario, ExhaustiveEnumerationCounts) {
  const topo::Network net = topo::build_b4();
  EXPECT_EQ(scenario::enumerate_exhaustive(net, 1).size(), 19u);
  EXPECT_EQ(scenario::enumerate_exhaustive(net, 2).size(),
            19u + 19u * 18u / 2u);
}

TEST(Scenario, RemoveDisconnectingKeepsConnectedCuts) {
  const topo::Network net = topo::build_testbed();
  // Cutting fibers 0, 1, or 3 leaves the IP layer connected; cutting fiber
  // C-D (id 2) fails three of the four IP links and isolates C and D at the
  // IP layer — exactly the Fig. 11 trial that restoration fixes.
  std::vector<scenario::Scenario> singles;
  for (int f = 0; f < 4; ++f) singles.push_back({{f}, 0.1});
  const auto kept = scenario::remove_disconnecting(net, singles);
  ASSERT_EQ(kept.size(), 3u);
  for (const auto& s : kept) EXPECT_NE(s.cuts[0], 2);
  // Cutting fibers 0 and 3 kills IP links A-B and A-C: site A is isolated.
  std::vector<scenario::Scenario> pair{{{0, 3}, 0.1}};
  EXPECT_TRUE(scenario::remove_disconnecting(net, pair).empty());
}

TEST(Traffic, TotalsMatchLoadFraction) {
  const topo::Network net = topo::build_b4();
  util::Rng rng(10);
  traffic::TrafficParams p;
  p.num_matrices = 4;
  p.diurnal_amplitude = 0.0;  // no modulation: exact total
  const auto ms = traffic::generate_traffic(net, p, rng);
  ASSERT_EQ(ms.size(), 4u);
  double capacity = 0.0;
  for (const auto& l : net.ip_links) capacity += l.capacity_gbps();
  for (const auto& tm : ms) {
    // min_share trimming loses a little mass; stays within 20%.
    EXPECT_LE(tm.total_gbps(), p.load_fraction * capacity + 1e-6);
    EXPECT_GT(tm.total_gbps(), 0.6 * p.load_fraction * capacity);
  }
}

TEST(Traffic, DiurnalModulationVariesAcrossEpochs) {
  const topo::Network net = topo::build_b4();
  util::Rng rng(11);
  traffic::TrafficParams p;
  p.num_matrices = 8;
  p.diurnal_amplitude = 0.4;
  const auto ms = traffic::generate_traffic(net, p, rng);
  // Pick a demand pair present in all epochs and check it actually moves.
  const auto& first = ms[0].demands[0];
  double lo = first.gbps, hi = first.gbps;
  for (const auto& tm : ms) {
    for (const auto& d : tm.demands) {
      if (d.src == first.src && d.dst == first.dst) {
        lo = std::min(lo, d.gbps);
        hi = std::max(hi, d.gbps);
      }
    }
  }
  EXPECT_GT(hi / lo, 1.05);
}

TEST(Traffic, DemandsArePositiveAndOffDiagonal) {
  const topo::Network net = topo::build_fbsynth();
  util::Rng rng(12);
  traffic::TrafficParams p;
  const auto ms = traffic::generate_traffic(net, p, rng);
  for (const auto& tm : ms) {
    for (const auto& d : tm.demands) {
      EXPECT_GT(d.gbps, 0.0);
      EXPECT_NE(d.src, d.dst);
      EXPECT_LT(d.src, net.num_sites);
      EXPECT_LT(d.dst, net.num_sites);
    }
  }
}

TEST(Traffic, ScaledMultipliesEveryDemand) {
  const topo::Network net = topo::build_b4();
  util::Rng rng(13);
  traffic::TrafficParams p;
  p.num_matrices = 1;
  const auto ms = traffic::generate_traffic(net, p, rng);
  const auto scaled = ms[0].scaled(2.5);
  ASSERT_EQ(scaled.demands.size(), ms[0].demands.size());
  EXPECT_NEAR(scaled.total_gbps(), 2.5 * ms[0].total_gbps(), 1e-9);
}

TEST(Traffic, DeterministicGivenSeed) {
  const topo::Network net = topo::build_ibm();
  util::Rng r1(21), r2(21);
  traffic::TrafficParams p;
  const auto a = traffic::generate_traffic(net, p, r1);
  const auto b = traffic::generate_traffic(net, p, r2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].total_gbps(), b[i].total_gbps());
  }
}

}  // namespace
}  // namespace arrow
