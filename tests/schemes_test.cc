// Restoration-scheme subsystem suite (ctest label: schemes): the registry
// round-trip, adapter equivalence — the registry-dispatched sweep must be
// byte-identical to the legacy boolean path at any thread count — plus the
// ReWeave localized-repair and PXT trail-provisioning machinery.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "schemes/builtin.h"
#include "schemes/pxt.h"
#include "schemes/reweave.h"
#include "schemes/scheme.h"
#include "sim/sweep.h"
#include "te/basic.h"
#include "topo/builders.h"
#include "traffic/traffic.h"
#include "util/parallel.h"

namespace arrow {
namespace {

struct Workload {
  topo::Network net;
  std::vector<traffic::TrafficMatrix> matrices;
  std::vector<scenario::Scenario> scenarios;
  te::TunnelParams tunnels;

  Workload() : net(topo::build_b4()) {
    util::Rng rng(404);
    traffic::TrafficParams tp;
    tp.num_matrices = 1;
    matrices = traffic::generate_traffic(net, tp, rng);
    scenario::ScenarioParams sp;
    sp.probability_cutoff = 0.005;
    auto set = scenario::generate_scenarios(net, sp, rng);
    scenarios = scenario::remove_disconnecting(net, set.scenarios);
    tunnels.tunnels_per_flow = 5;
  }

  te::TeInput input(double load) const {
    te::TeInput in(net, matrices[0], scenarios, tunnels);
    in.scale_demands(te::max_satisfiable_scale(in) * load);
    return in;
  }
};

// --- registry ---------------------------------------------------------------

TEST(SchemeRegistry, BuiltinsRegisteredInCanonicalOrder) {
  const auto names = schemes::Registry::global().names();
  const std::vector<std::string> want = {"ARROW",  "ARROW-Naive",
                                         "FFC-1",  "FFC-2",
                                         "TeaVaR", "ECMP",
                                         "ReWeave-Local", "PXT"};
  EXPECT_EQ(names, want);
  for (const auto& name : want) {
    EXPECT_TRUE(schemes::Registry::global().contains(name)) << name;
  }
}

TEST(SchemeRegistry, CreateRoundTripsNamesAndCapabilities) {
  const auto& registry = schemes::Registry::global();
  for (const auto& name : registry.names()) {
    const auto scheme = registry.create(name);
    ASSERT_NE(scheme, nullptr) << name;
    EXPECT_EQ(scheme->name(), name);
  }
  EXPECT_TRUE(registry.capabilities("ARROW").needs_prepared);
  EXPECT_TRUE(registry.capabilities("ARROW").restores_optically);
  EXPECT_FALSE(registry.capabilities("ARROW").supports_local_repair);
  EXPECT_TRUE(registry.capabilities("ARROW-Naive").needs_prepared);
  EXPECT_FALSE(registry.capabilities("FFC-1").needs_prepared);
  EXPECT_FALSE(registry.capabilities("ECMP").restores_optically);
  EXPECT_TRUE(
      registry.capabilities("ReWeave-Local").supports_local_repair);
  EXPECT_FALSE(registry.capabilities("ReWeave-Local").needs_prepared);
  EXPECT_TRUE(registry.capabilities("PXT").preprovisions_spectrum);
  EXPECT_TRUE(registry.capabilities("PXT").restores_optically);
}

TEST(SchemeRegistry, UnknownSchemeErrorListsRegisteredNames) {
  const auto& registry = schemes::Registry::global();
  try {
    registry.create("SWAN");
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown scheme 'SWAN'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("registered:"), std::string::npos) << msg;
    for (const auto& name : registry.names()) {
      EXPECT_NE(msg.find(name), std::string::npos) << msg;
    }
  }
}

TEST(SchemeRegistry, LocalRegistriesAreIsolatedFromGlobal) {
  schemes::Registry local;
  EXPECT_EQ(local.names(), schemes::Registry::global().names());
  local.add("custom", [](const schemes::SchemeOptions& options) {
    return schemes::make_ecmp(options);
  });
  EXPECT_TRUE(local.contains("custom"));
  EXPECT_FALSE(schemes::Registry::global().contains("custom"));
  // Replacing a factory keeps the position (names() is registration order).
  local.add("ECMP", schemes::make_ecmp);
  EXPECT_EQ(local.names()[5], "ECMP");
}

// --- adapter equivalence ----------------------------------------------------

// The registry-dispatched sweep (SweepParams::schemes) must reproduce the
// legacy boolean path byte-for-byte, at any thread count. Exact double
// equality on purpose.
TEST(SchemeAdapters, SweepByNameListMatchesLegacyBooleansByteForByte) {
  Workload w;
  sim::SweepParams params;
  params.scales = {0.4, 0.8};
  params.run_ffc2 = false;   // keep the suite fast; FFC-2 shares the
  params.run_teavar = false; // adapter code path with FFC-1
  params.arrow.tickets.num_tickets = 3;

  util::ThreadPool pool1(1);
  util::Rng rng_base(31);
  const sim::SweepResult base =
      sim::run_sweep(w.net, w.matrices, w.scenarios, params, rng_base, pool1);
  ASSERT_EQ(base.schemes,
            (std::vector<std::string>{"ARROW", "ARROW-Naive", "FFC-1",
                                      "ECMP"}));

  sim::SweepParams by_name = params;
  by_name.schemes = base.schemes;
  for (int threads : {1, 2, 8}) {
    util::ThreadPool pool(threads);
    util::Rng rng(31);
    const sim::SweepResult got =
        sim::run_sweep(w.net, w.matrices, w.scenarios, by_name, rng, pool);
    EXPECT_EQ(got.schemes, base.schemes) << "threads=" << threads;
    EXPECT_EQ(got.scales, base.scales);
    for (const auto& s : base.schemes) {
      ASSERT_EQ(got.availability.at(s).size(), base.availability.at(s).size());
      for (std::size_t si = 0; si < base.scales.size(); ++si) {
        EXPECT_EQ(got.availability.at(s)[si], base.availability.at(s)[si])
            << s << " scale " << si << " threads=" << threads;
        EXPECT_EQ(got.throughput.at(s)[si], base.throughput.at(s)[si])
            << s << " scale " << si << " threads=" << threads;
      }
      EXPECT_EQ(got.simplex_iterations.at(s), base.simplex_iterations.at(s))
          << s << " threads=" << threads;
      EXPECT_EQ(got.solve_failures.at(s), base.solve_failures.at(s));
      // The legacy six never weave repairs: telemetry must stay zero.
      EXPECT_EQ(got.repair_cuts.at(s), 0) << s;
    }
  }
}

TEST(SchemeAdapters, SweepRejectsUnknownSchemeNameUpFront) {
  Workload w;
  sim::SweepParams params;
  params.scales = {0.4};
  params.schemes = {"ECMP", "B4-TE"};
  util::Rng rng(1);
  try {
    sim::run_sweep(w.net, w.matrices, w.scenarios, params, rng);
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("unknown scheme 'B4-TE'"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("registered:"), std::string::npos);
  }
}

TEST(SweepResult, MaxScaleAtUnknownSchemeNamesSweptAndRegistered) {
  sim::SweepResult r;
  r.scales = {1.0, 2.0};
  r.schemes = {"X"};
  r.availability["X"] = {1.0, 0.5};
  EXPECT_GT(r.max_scale_at("X", 0.9), 0.0);  // present: no throw
  try {
    r.max_scale_at("Y", 0.9);
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown scheme 'Y'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("registered:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("swept: X"), std::string::npos) << msg;
  }
}

// --- ReWeave localized repair -----------------------------------------------

TEST(ReWeave, LocalRepairMatchesGlobalResolveOnFeasibleCuts) {
  Workload w;
  // 0.4 of the max satisfiable scale: enough headroom that most cuts repair
  // locally, hot enough that some must fall back — both paths get covered.
  const te::TeInput input = w.input(0.4);
  te::TeSolution plan = te::solve_max_throughput(input);
  ASSERT_TRUE(plan.optimal);

  int locals = 0;
  for (int q = 0; q < input.num_scenarios(); ++q) {
    const auto& failed = input.failed_links(q);
    const auto outcome = schemes::local_repair(input, plan, failed);
    ASSERT_TRUE(outcome.ok) << "scenario " << q;
    const te::TeSolution global = schemes::global_resolve(input, failed);
    ASSERT_TRUE(global.optimal) << "scenario " << q;
    double global_admitted = 0.0;
    for (double b : global.admitted) global_admitted += b;
    double repaired_admitted = 0.0;
    for (double b : outcome.plan.admitted) repaired_admitted += b;
    if (outcome.local) {
      ++locals;
      // Full local recovery is a feasible point admitting every flow's
      // demand, i.e. the global optimum: delivered capacity must agree.
      EXPECT_NEAR(outcome.recovered_gbps, outcome.affected_demand_gbps, 1e-6)
          << "scenario " << q;
      EXPECT_NEAR(repaired_admitted, global_admitted, 1e-6)
          << "scenario " << q;
    } else {
      // The fallback *is* the global re-solve.
      EXPECT_TRUE(outcome.fell_back_global) << "scenario " << q;
      EXPECT_NEAR(repaired_admitted, global_admitted, 1e-6);
    }
  }
  EXPECT_GT(locals, 0) << "no scenario exercised the local fast path";
}

TEST(ReWeave, UnaffectedFlowsKeepTheirAllocationByteForByte) {
  Workload w;
  const te::TeInput input = w.input(0.4);
  const te::TeSolution plan = te::solve_max_throughput(input);
  ASSERT_TRUE(plan.optimal);

  int checked = 0;
  for (int q = 0; q < input.num_scenarios(); ++q) {
    const auto& failed = input.failed_links(q);
    const auto outcome = schemes::local_repair(input, plan, failed);
    if (!outcome.ok || !outcome.local) continue;
    // Flows owning a tunnel across a failed link were re-optimized; every
    // other flow's installed allocation must be untouched.
    std::set<int> affected;
    for (topo::IpLinkId e : failed) {
      for (const auto& lt : input.tunnels_on_link(e)) {
        affected.insert(lt.flow);
      }
    }
    for (int f = 0; f < input.num_flows(); ++f) {
      if (affected.count(f) != 0) continue;
      EXPECT_EQ(outcome.plan.alloc[static_cast<std::size_t>(f)],
                plan.alloc[static_cast<std::size_t>(f)])
          << "scenario " << q << " flow " << f;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(ReWeave, NoFallbackWhenDisallowedAndLatencyIsDeterministic) {
  Workload w;
  const te::TeInput input = w.input(0.6);
  const te::TeSolution plan = te::solve_max_throughput(input);
  ASSERT_TRUE(plan.optimal);

  schemes::ReWeaveParams params;
  params.allow_global_fallback = false;
  for (int q = 0; q < input.num_scenarios(); ++q) {
    const auto outcome =
        schemes::local_repair(input, plan, input.failed_links(q), params);
    // With the fallback off, every outcome is either a pure local success
    // or an honest failure — never a global plan in local clothing.
    EXPECT_FALSE(outcome.fell_back_global);
    EXPECT_EQ(outcome.ok, outcome.local);
  }
}

// --- PXT trails -------------------------------------------------------------

TEST(Pxt, ReservationsAreDisjointFromProvisionedSpectrum) {
  Workload w;
  const auto trails = schemes::plan_trails(w.net, w.scenarios);
  EXPECT_GT(trails.trails, 0);
  EXPECT_GT(trails.reserved_gbps, 0.0);

  const auto occupancy = w.net.spectrum_occupancy();
  ASSERT_EQ(trails.reserved_slots.size(), w.net.optical.fibers.size());
  int counted = 0;
  for (std::size_t f = 0; f < trails.reserved_slots.size(); ++f) {
    int prev = -1;
    for (int slot : trails.reserved_slots[f]) {
      // Ascending and unique per fiber, never on a lit wavelength —
      // dedicated protection must not collide with working spectrum.
      EXPECT_GT(slot, prev) << "fiber " << f;
      prev = slot;
      ASSERT_LT(slot, w.net.optical.fibers[f].slots);
      EXPECT_FALSE(occupancy[f][static_cast<std::size_t>(slot)])
          << "fiber " << f << " slot " << slot;
      ++counted;
    }
  }
  EXPECT_EQ(counted, trails.reserved_slot_count);
}

TEST(Pxt, RestoredCapacityCoversOnlyFailedLinksAndRespectsWaveCap) {
  Workload w;
  schemes::PxtParams params;
  params.max_trail_waves = 1;
  const auto trails = schemes::plan_trails(w.net, w.scenarios, params);
  ASSERT_EQ(trails.restored.size(), w.scenarios.size());

  for (std::size_t q = 0; q < w.scenarios.size(); ++q) {
    const auto failed = w.net.failed_ip_links(w.scenarios[q].cuts);
    const std::set<topo::IpLinkId> failed_set(failed.begin(), failed.end());
    for (const auto& [link, gbps] : trails.restored[q]) {
      EXPECT_TRUE(failed_set.count(link) != 0)
          << "scenario " << q << " restored a healthy link " << link;
      EXPECT_GT(gbps, 0.0);
    }
  }
  // One wave per link at most: the capped plan reserves no more slots than
  // (scenario, link) pairs times the longest trail, and strictly fewer
  // Gbps than the uncapped plan on any workload that loses >1 wave.
  const auto uncapped = schemes::plan_trails(w.net, w.scenarios);
  EXPECT_LE(trails.reserved_gbps, uncapped.reserved_gbps);
  EXPECT_LE(trails.reserved_slot_count, uncapped.reserved_slot_count);
}

TEST(Pxt, SchemeSolveCarriesTrailRestorationIntoTheEvaluator) {
  Workload w;
  const te::TeInput input = w.input(0.5);
  const auto& registry = schemes::Registry::global();
  const auto pxt = registry.create("PXT");
  util::ThreadPool pool(1);
  te::ArrowPrepared unused;
  const te::TeSolution sol = pxt->solve(input, unused, pool, nullptr);
  ASSERT_TRUE(sol.optimal);
  EXPECT_EQ(sol.scheme, "PXT");
  ASSERT_EQ(sol.restored.size(), w.scenarios.size());

  // Cut answer: pure lookup, transponder-speed latency, zero solve cost.
  schemes::CutContext ctx{input, 0, sol};
  const auto repair = pxt->on_cut(ctx);
  EXPECT_TRUE(repair.ok);
  EXPECT_TRUE(repair.local);
  EXPECT_EQ(repair.simplex_iterations, 0);
  const schemes::PxtParams defaults;
  EXPECT_DOUBLE_EQ(repair.latency_s,
                   defaults.detection_s + defaults.switchover_s);
}

// --- new entrants through the sweep -----------------------------------------

TEST(SchemeSweep, ReWeaveAndPxtRideTheSweepWithRepairTelemetry) {
  Workload w;
  sim::SweepParams params;
  params.scales = {0.4, 0.8};
  params.schemes = {"ECMP", "ReWeave-Local", "PXT"};
  util::Rng rng(17);
  util::ThreadPool pool(2);
  const auto result =
      sim::run_sweep(w.net, w.matrices, w.scenarios, params, rng, pool);

  EXPECT_EQ(result.schemes, params.schemes);
  EXPECT_EQ(result.total_solve_failures(), 0);
  for (const auto& s : params.schemes) {
    for (double a : result.availability.at(s)) {
      EXPECT_GE(a, 0.0);
      EXPECT_LE(a, 1.0 + 1e-9);
    }
  }
  // Every (scale, scenario) pair weaves one repair; ECMP and PXT never
  // touch the repair LP.
  EXPECT_EQ(result.repair_cuts.at("ReWeave-Local"),
            static_cast<long long>(params.scales.size()) *
                static_cast<long long>(w.scenarios.size()));
  EXPECT_EQ(result.repair_cuts.at("ECMP"), 0);
  EXPECT_GE(result.repair_local.at("ReWeave-Local"), 0);
  EXPECT_EQ(result.repair_local.at("ReWeave-Local") +
                result.repair_fallbacks.at("ReWeave-Local"),
            result.repair_cuts.at("ReWeave-Local"));
  EXPECT_GT(result.repair_latency_s.at("ReWeave-Local"), 0.0);
  EXPECT_EQ(result.repair_simplex_iterations.at("PXT"), 0);
  // PXT answers cuts from pre-provisioned trails: its scenarios are scored
  // through TeSolution::restored, not on_cut, so repair telemetry is zero
  // but availability must beat the repair-less max-throughput twin at the
  // same load... which is ECMP-adjacent; just sanity-check the range here.
  EXPECT_EQ(result.repair_cuts.at("PXT"), 0);
}

}  // namespace
}  // namespace arrow
