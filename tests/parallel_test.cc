// util::ThreadPool and the counter-seeded RNG stream discipline.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "solver/lp.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace arrow {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  constexpr int kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, [&](int i) { hits[static_cast<std::size_t>(i)]++; });
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, EmptyAndSingletonRanges) {
  util::ThreadPool pool(3);
  int calls = 0;
  pool.parallel_for(5, 5, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(7, 8, [&](int i) {
    ++calls;
    EXPECT_EQ(i, 7);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, SingleThreadRunsInlineOnCaller) {
  util::ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen_for, seen_submit;
  pool.parallel_for(0, 1, [&](int) { seen_for = std::this_thread::get_id(); });
  pool.submit([&] { seen_submit = std::this_thread::get_id(); }).get();
  EXPECT_EQ(seen_for, caller);
  EXPECT_EQ(seen_submit, caller);
}

// The reason the controller drops to ThreadPool(1) under a fault drill:
// ambient solver hooks are thread-local, so only the inline pool keeps them
// visible to the work it runs.
TEST(ThreadPool, InlinePoolSeesAmbientHooks) {
  solver::SimplexOptions opt;
  opt.max_iterations = 1234;
  solver::ScopedSimplexOverride guard(opt);
  util::ThreadPool inline_pool(1);
  bool seen = false;
  inline_pool.parallel_for(0, 1, [&](int) {
    const auto* active = solver::ScopedSimplexOverride::active();
    seen = active != nullptr && active->max_iterations == 1234;
  });
  EXPECT_TRUE(seen);
}

TEST(ThreadPool, WorkersDoNotInheritAmbientHooks) {
  solver::SimplexOptions opt;
  solver::ScopedSimplexOverride guard(opt);
  util::ThreadPool pool(2);  // >1 thread: every body runs on a worker
  std::atomic<int> leaked{0};
  pool.parallel_for(0, 8, [&](int) {
    if (solver::ScopedSimplexOverride::active() != nullptr) leaked++;
  });
  EXPECT_EQ(leaked.load(), 0);
}

TEST(ThreadPool, ParallelForRethrowsTaskException) {
  util::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [&](int i) {
                                   if (i == 37) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool must stay usable after an exception drained.
  std::atomic<int> n{0};
  pool.parallel_for(0, 10, [&](int) { n++; });
  EXPECT_EQ(n.load(), 10);
}

TEST(ThreadPool, SubmitFutureRethrows) {
  util::ThreadPool pool(2);
  auto fut = pool.submit([] { throw std::logic_error("task failed"); });
  EXPECT_THROW(fut.get(), std::logic_error);
}

// The regression the pool-level error slot exists for: a fire-and-forget
// submit whose future is discarded used to lose the exception entirely.
// wait() must surface it — at every pool size, including inline mode.
TEST(ThreadPool, WaitRethrowsDiscardedFutureException) {
  for (int threads : {1, 2, 8}) {
    util::ThreadPool pool(threads);
    if (threads == 1) {
      // Inline mode runs the task on submit; the packaged_task still
      // captures the throw, so submit itself must not propagate it.
      EXPECT_NO_THROW(
          pool.submit([] { throw std::runtime_error("dropped"); }));
    } else {
      pool.submit([] { throw std::runtime_error("dropped"); });
    }
    EXPECT_THROW(pool.wait(), std::runtime_error) << threads << " threads";
    // The error was delivered and cleared: a second wait is clean and the
    // pool stays usable.
    EXPECT_NO_THROW(pool.wait());
    std::atomic<int> n{0};
    pool.parallel_for(0, 10, [&](int) { n++; });
    EXPECT_EQ(n.load(), 10);
  }
}

TEST(ThreadPool, WaitReportsFirstOfManyFailures) {
  util::ThreadPool pool(4);
  for (int i = 0; i < 16; ++i) {
    pool.submit([] { throw std::runtime_error("one of many"); });
  }
  EXPECT_THROW(pool.wait(), std::runtime_error);
  EXPECT_NO_THROW(pool.wait());
}

TEST(ThreadPool, WaitWithNoWorkAndNoErrorsIsANoOp) {
  util::ThreadPool pool(3);
  EXPECT_NO_THROW(pool.wait());
  std::atomic<int> n{0};
  for (int i = 0; i < 8; ++i) pool.submit([&] { n++; });
  pool.wait();
  EXPECT_EQ(n.load(), 8);
}

TEST(ThreadPool, ParallelForDeliveryClearsThePendingError) {
  util::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(
                   0, 50,
                   [&](int i) {
                     if (i == 7) throw std::runtime_error("loop failure");
                   }),
               std::runtime_error);
  // parallel_for already delivered the exception to its caller; wait() must
  // not replay a stale copy.
  EXPECT_NO_THROW(pool.wait());
}

TEST(ThreadPool, DefaultThreadCountHonorsEnvOverride) {
  ::setenv("ARROW_THREADS", "3", 1);
  EXPECT_EQ(util::default_thread_count(), 3);
  ::setenv("ARROW_THREADS", "0", 1);  // invalid: must fall back to hardware
  EXPECT_GE(util::default_thread_count(), 1);
  ::setenv("ARROW_THREADS", "banana", 1);
  EXPECT_GE(util::default_thread_count(), 1);
  ::unsetenv("ARROW_THREADS");
  EXPECT_GE(util::default_thread_count(), 1);
}

TEST(StreamSeed, PureFunctionOfBaseAndIndex) {
  const std::uint64_t base = 0xDEADBEEFCAFEull;
  EXPECT_EQ(util::Rng::stream_seed(base, 5), util::Rng::stream_seed(base, 5));
  // Nearby indices and nearby bases must decorrelate.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 100; ++i) {
    seeds.insert(util::Rng::stream_seed(base, i));
    seeds.insert(util::Rng::stream_seed(base + 1, i));
  }
  EXPECT_EQ(seeds.size(), 200u);
}

TEST(StreamSeed, StreamsIndependentOfDrawOrder) {
  // Stream i's draws depend only on (base, i), not on which sibling streams
  // were instantiated first — the property parallel fan-out relies on.
  const std::uint64_t base = 42;
  util::Rng forward_first(util::Rng::stream_seed(base, 0));
  const std::uint64_t a = forward_first.next_u64();
  util::Rng other(util::Rng::stream_seed(base, 7));
  (void)other.next_u64();
  util::Rng again(util::Rng::stream_seed(base, 0));
  EXPECT_EQ(again.next_u64(), a);
}

}  // namespace
}  // namespace arrow
