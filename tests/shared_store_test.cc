// Shared-BasisStore suite (ctest labels: serve, chaos): the file-locked
// load→merge→save mode that lets N daemon processes share one on-disk
// basis store.
//
// Layers:
//   * util::FileLock semantics (advisory flock, RAII release);
//   * save_shared merge semantics against plain save/load — disk entries
//     this process never saw survive, in-memory entries win collisions;
//   * the acceptance drill: two child processes (self-exec, the pattern
//     from journal_test) hammer save_shared into ONE file concurrently,
//     and every entry from both survives. With plain save() this is a
//     last-writer-wins clobber and the drill fails.
//
// This file supplies its own main(): the drill needs argv[0] and an
// environment-variable child mode, which gtest_main cannot provide.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "resilience/chaos.h"
#include "solver/basis_store.h"
#include "util/clock.h"
#include "util/fs.h"

namespace arrow {
namespace {

const char* g_argv0 = "";

// Child-mode markers: the store path, and a per-child key base so the two
// children write disjoint entry sets.
constexpr const char* kSharedStoreChildEnv = "ARROW_SHARED_STORE_CHILD";
constexpr const char* kSharedStoreBaseEnv = "ARROW_SHARED_STORE_BASE";

constexpr int kChildRounds = 24;

std::string temp_path(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "arrow_shared_store_test";
  std::filesystem::create_directories(dir);
  return dir + "/" + name;
}

solver::Basis make_basis(int cols, solver::BasisStatus fill) {
  solver::Basis b;
  b.status.assign(static_cast<std::size_t>(cols), fill);
  return b;
}

// --- FileLock ---------------------------------------------------------------

TEST(FileLock, AcquiresCreatesAndReleases) {
  const std::string path = temp_path("lockfile");
  std::filesystem::remove(path);
  {
    util::FileLock lock(path);
    EXPECT_TRUE(lock.held());
    EXPECT_TRUE(std::filesystem::exists(path));  // lock file created
  }
  // Released on destruction: re-acquiring must not block.
  util::FileLock again(path);
  EXPECT_TRUE(again.held());
}

TEST(FileLock, UnopenablePathReportsNotHeld) {
  util::FileLock lock("/nonexistent-dir-zzz/lock");
  EXPECT_FALSE(lock.held());
}

// --- merge semantics --------------------------------------------------------

TEST(SharedStore, SaveSharedMergesDiskEntriesItNeverSaw) {
  const std::string path = temp_path("merge.bin");
  std::filesystem::remove(path);

  // Process A's view: one entry, saved plainly.
  solver::BasisStore a;
  a.store({1, 2, 10, 10}, make_basis(10, solver::BasisStatus::kBasic));
  ASSERT_TRUE(a.save(path));

  // Process B never loaded the file; it has a colliding key (different
  // basis) and a fresh one.
  solver::BasisStore b;
  b.store({1, 2, 10, 10},
          make_basis(10, solver::BasisStatus::kNonbasicLower));
  b.store({1, 2, 20, 20}, make_basis(20, solver::BasisStatus::kBasic));
  ASSERT_TRUE(b.save_shared(path));

  // The file now holds the union; on the collision B's (in-memory) basis
  // won — B's is the freshest, A's copy is still on disk via A if it saves
  // again.
  solver::BasisStore merged;
  ASSERT_TRUE(merged.load(path));
  EXPECT_EQ(merged.size(), 2u);
  solver::Basis out;
  ASSERT_TRUE(merged.load({1, 2, 10, 10}, &out));
  EXPECT_EQ(out.num_basic(), 0);  // B's kNonbasicLower fill, not A's
  ASSERT_TRUE(merged.load({1, 2, 20, 20}, &out));
  EXPECT_EQ(out.num_basic(), 20);
}

TEST(SharedStore, SaveSharedWithoutExistingFileJustSaves) {
  const std::string path = temp_path("fresh.bin");
  std::filesystem::remove(path);
  solver::BasisStore s;
  s.store({3, 4, 5, 5}, make_basis(5, solver::BasisStatus::kBasic));
  ASSERT_TRUE(s.save_shared(path));
  solver::BasisStore back;
  ASSERT_TRUE(back.load(path));
  EXPECT_EQ(back.size(), 1u);
}

TEST(SharedStore, PlainSaveStillClobbers) {
  // Documents the contrast save_shared exists for: plain save is
  // last-writer-wins by design (single-process runs want exactly that).
  const std::string path = temp_path("clobber.bin");
  std::filesystem::remove(path);
  solver::BasisStore a;
  a.store({1, 1, 7, 7}, make_basis(7, solver::BasisStatus::kBasic));
  ASSERT_TRUE(a.save(path));
  solver::BasisStore b;
  b.store({1, 1, 9, 9}, make_basis(9, solver::BasisStatus::kBasic));
  ASSERT_TRUE(b.save(path));
  solver::BasisStore back;
  ASSERT_TRUE(back.load(path));
  EXPECT_EQ(back.size(), 1u);  // A's entry is gone
}

// --- concurrent multi-process drill -----------------------------------------

// Child role: accumulate kChildRounds entries (keys disjoint per child via
// the base) into an in-memory store, calling save_shared after EVERY
// addition — maximal read-merge-write interleaving with the sibling.
int shared_store_child(const std::string& path, std::uint64_t base) {
  solver::BasisStore store;
  for (int i = 0; i < kChildRounds; ++i) {
    const int cols = 4 + i;
    store.store({base, 1, static_cast<std::uint64_t>(100 + i),
                 static_cast<std::uint64_t>(cols)},
                make_basis(cols, solver::BasisStatus::kBasic));
    if (!store.save_shared(path)) return 3;
  }
  return 0;
}

TEST(SharedStoreChaos, TwoProcessesSavingConcurrentlyLoseNothing) {
  const std::string path = temp_path("concurrent.bin");
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".lock");

  const int pid1 = resilience::spawn_self(
      g_argv0, {{kSharedStoreChildEnv, path}, {kSharedStoreBaseEnv, "1"}});
  const int pid2 = resilience::spawn_self(
      g_argv0, {{kSharedStoreChildEnv, path}, {kSharedStoreBaseEnv, "2"}});
  ASSERT_GT(pid1, 0);
  ASSERT_GT(pid2, 0);
  const auto exit1 = resilience::wait_child(pid1);
  const auto exit2 = resilience::wait_child(pid2);
  EXPECT_FALSE(exit1.signaled);
  EXPECT_EQ(exit1.code, 0);
  EXPECT_FALSE(exit2.signaled);
  EXPECT_EQ(exit2.code, 0);

  // Both children's FULL entry sets must be in the final file. Before the
  // flock+merge this raced: whichever child saved last clobbered the
  // other's entries wholesale.
  solver::BasisStore merged;
  ASSERT_TRUE(merged.load(path));
  EXPECT_EQ(merged.size(), 2u * kChildRounds);
  solver::Basis out;
  for (std::uint64_t base : {std::uint64_t{1}, std::uint64_t{2}}) {
    for (int i = 0; i < kChildRounds; ++i) {
      EXPECT_TRUE(merged.load({base, 1, static_cast<std::uint64_t>(100 + i),
                               static_cast<std::uint64_t>(4 + i)},
                              &out))
          << "lost entry " << i << " of child " << base;
    }
  }
}

}  // namespace
}  // namespace arrow

int main(int argc, char** argv) {
  if (const char* path = std::getenv(arrow::kSharedStoreChildEnv)) {
    const char* base = std::getenv(arrow::kSharedStoreBaseEnv);
    return arrow::shared_store_child(path,
                                     base ? std::strtoull(base, nullptr, 10)
                                          : 1);
  }
  arrow::g_argv0 = argv[0];
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
