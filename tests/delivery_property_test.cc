// Property tests for sim::delivered_for_capacity, the delivery model behind
// every availability number in the reproduction (§3.3 / §6.1). Rather than
// pinning a handful of hand-computed states, these sweep randomized
// double-fiber-cut states with random partial restoration and assert the
// invariants the model must hold in *every* state:
//
//   1. post-scaling load on each link never exceeds its capacity;
//   2. a link with zero capacity carries exactly nothing;
//   3. a tunnel crossing any dead link is offered nothing;
//   4. a flow whose tunnels are all dead delivers exactly zero;
//   5. delivered <= offered per tunnel, with equality when no link on the
//      tunnel is over-subscribed;
//   6. a flow's offered volume never exceeds min(demand, its allocation).
#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "sim/availability.h"
#include "te/basic.h"
#include "te/ffc.h"
#include "topo/builders.h"
#include "traffic/traffic.h"

namespace arrow::sim {
namespace {

class DeliveryPropertyTest : public ::testing::Test {
 protected:
  DeliveryPropertyTest() : net_(topo::build_b4()) {
    util::Rng rng(97);
    traffic::TrafficParams tp;
    tp.num_matrices = 1;
    matrices_ = traffic::generate_traffic(net_, tp, rng);
    scenario::ScenarioParams sp;
    sp.probability_cutoff = 0.001;
    auto set = scenario::generate_scenarios(net_, sp, rng);
    scenarios_ = scenario::remove_disconnecting(net_, set.scenarios);
    te::TunnelParams tun;
    tun.tunnels_per_flow = 6;
    input_ = std::make_unique<te::TeInput>(net_, matrices_[0], scenarios_,
                                           tun);
    // Load high enough that rehashed traffic over-subscribes links under
    // double cuts — the scaling path must actually engage for invariant 1
    // to mean anything.
    input_->scale_demands(te::max_satisfiable_scale(*input_));
    input_->scale_demands(0.9);
    solution_ = te::solve_ffc(*input_, te::FfcParams{1, 0});
  }

  // One random double-cut state: both fibers' IP links go to zero, then each
  // failed link is independently restored to a random fraction of its
  // provisioned capacity (mimicking mid-restoration states where wavelengths
  // are coming back one by one).
  std::vector<double> random_state(util::Rng& rng) const {
    std::vector<double> capacity(net_.ip_links.size());
    for (std::size_t e = 0; e < capacity.size(); ++e) {
      capacity[e] = net_.ip_links[e].capacity_gbps();
    }
    const int nf = static_cast<int>(net_.optical.fibers.size());
    const topo::FiberId f1 = rng.uniform_int(0, nf - 1);
    topo::FiberId f2 = rng.uniform_int(0, nf - 1);
    while (f2 == f1) f2 = rng.uniform_int(0, nf - 1);
    for (topo::IpLinkId e : net_.failed_ip_links({f1, f2})) {
      capacity[static_cast<std::size_t>(e)] =
          rng.bernoulli(0.5)
              ? rng.uniform(0.0, 1.0) *
                    net_.ip_links[static_cast<std::size_t>(e)].capacity_gbps()
              : 0.0;
    }
    return capacity;
  }

  topo::Network net_;
  std::vector<traffic::TrafficMatrix> matrices_;
  std::vector<scenario::Scenario> scenarios_;
  std::unique_ptr<te::TeInput> input_;
  te::TeSolution solution_;
};

TEST_F(DeliveryPropertyTest, InvariantsHoldAcrossRandomDoubleCutStates) {
  ASSERT_TRUE(solution_.optimal);
  util::Rng rng(2026);
  constexpr double kDeadCap = 1e-9;  // the model's "link is down" threshold
  int states_with_scaling = 0;
  int flows_cut_off = 0;

  for (int trial = 0; trial < 80; ++trial) {
    const std::vector<double> capacity = random_state(rng);
    std::vector<std::vector<double>> offered;
    const auto delivered =
        delivered_for_capacity(*input_, solution_, capacity, &offered);
    ASSERT_EQ(delivered.size(), solution_.alloc.size());
    ASSERT_EQ(offered.size(), solution_.alloc.size());

    std::vector<double> link_load(net_.ip_links.size(), 0.0);
    bool any_scaled = false;
    for (std::size_t f = 0; f < delivered.size(); ++f) {
      ASSERT_EQ(delivered[f].size(), solution_.alloc[f].size());
      ASSERT_EQ(offered[f].size(), solution_.alloc[f].size());
      const auto& tunnels = input_->tunnels()[f];
      double flow_offered = 0.0;
      double total_alloc = 0.0;
      bool any_usable = false;
      for (std::size_t ti = 0; ti < delivered[f].size(); ++ti) {
        total_alloc += solution_.alloc[f][ti];
        bool tunnel_alive = true;
        for (int e : tunnels[ti].links) {
          if (capacity[static_cast<std::size_t>(e)] <= kDeadCap) {
            tunnel_alive = false;
          }
        }
        any_usable |= tunnel_alive;
        if (!tunnel_alive) {
          // Invariant 3: dead tunnels are offered (and deliver) nothing.
          EXPECT_EQ(offered[f][ti], 0.0) << "trial=" << trial << " f=" << f;
          EXPECT_EQ(delivered[f][ti], 0.0) << "trial=" << trial << " f=" << f;
        }
        // Invariant 5: scaling only ever shrinks a tunnel's volume.
        EXPECT_LE(delivered[f][ti], offered[f][ti] + 1e-12)
            << "trial=" << trial << " f=" << f << " ti=" << ti;
        if (delivered[f][ti] < offered[f][ti] - 1e-12) any_scaled = true;
        flow_offered += offered[f][ti];
        for (int e : tunnels[ti].links) {
          link_load[static_cast<std::size_t>(e)] += delivered[f][ti];
        }
      }
      if (!any_usable) {
        // Invariant 4: a fully cut-off flow delivers exactly zero.
        ++flows_cut_off;
        EXPECT_EQ(flow_offered, 0.0) << "trial=" << trial << " f=" << f;
      }
      // Invariant 6: the model never offers more than the flow could send.
      const double intend =
          std::min(input_->flows()[f].demand_gbps, total_alloc);
      EXPECT_LE(flow_offered, intend + 1e-6)
          << "trial=" << trial << " f=" << f;
    }

    for (std::size_t e = 0; e < link_load.size(); ++e) {
      if (capacity[e] <= kDeadCap) {
        // Invariant 2: dead links carry exactly nothing.
        EXPECT_EQ(link_load[e], 0.0) << "trial=" << trial << " link=" << e;
      } else {
        // Invariant 1: post-scaling load fits the (possibly partially
        // restored) capacity.
        EXPECT_LE(link_load[e], capacity[e] * (1.0 + 1e-9) + 1e-6)
            << "trial=" << trial << " link=" << e;
      }
    }
    if (any_scaled) ++states_with_scaling;
  }

  // The sweep must have exercised the interesting regimes, or the
  // invariants above were vacuous.
  EXPECT_GT(states_with_scaling, 0);
  EXPECT_GT(flows_cut_off, 0);
}

// The healthy state (full capacity) is the near-identity case. It is not an
// exact identity: the TE optimum saturates some links exactly, and the
// epsilon splitting weights (footnote 6) nudge a ~1e-4 share of each flow
// onto tunnels the allocation left empty, so a binding link can be
// over-subscribed by that hair and scale its tunnels accordingly. The
// property is that this is the *only* slack: every tunnel delivers its
// offer to within the epsilon-weight order of magnitude.
TEST_F(DeliveryPropertyTest, HealthyStateDeliversOfferedAlmostExactly) {
  std::vector<double> capacity(net_.ip_links.size());
  for (std::size_t e = 0; e < capacity.size(); ++e) {
    capacity[e] = net_.ip_links[e].capacity_gbps();
  }
  std::vector<std::vector<double>> offered;
  const auto delivered =
      delivered_for_capacity(*input_, solution_, capacity, &offered);
  for (std::size_t f = 0; f < delivered.size(); ++f) {
    for (std::size_t ti = 0; ti < delivered[f].size(); ++ti) {
      EXPECT_LE(delivered[f][ti], offered[f][ti] + 1e-12) << "f=" << f;
      EXPECT_NEAR(delivered[f][ti], offered[f][ti],
                  offered[f][ti] * 1e-3 + 1e-9)
          << "f=" << f << " ti=" << ti;
    }
  }
}

}  // namespace
}  // namespace arrow::sim
