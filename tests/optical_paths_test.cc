// Tests for the shortest-path / Yen k-shortest-path machinery.
#include <set>

#include <gtest/gtest.h>

#include "optical/paths.h"
#include "util/rng.h"

namespace arrow::optical {
namespace {

Graph diamond() {
  // 0 -1- 1 -1- 3, 0 -2- 2 -2- 3, plus direct 0-3 weight 5.
  return Graph(4, {
                      {0, 0, 1, 1.0},
                      {1, 1, 3, 1.0},
                      {2, 0, 2, 2.0},
                      {3, 2, 3, 2.0},
                      {4, 0, 3, 5.0},
                  });
}

TEST(Graph, ShortestPathPicksCheapest) {
  const Graph g = diamond();
  const auto p = g.shortest_path(0, 3);
  EXPECT_EQ(p, (std::vector<int>{0, 1}));
  EXPECT_DOUBLE_EQ(g.path_weight(p), 2.0);
}

TEST(Graph, ShortestPathHonoursBans) {
  const Graph g = diamond();
  std::vector<char> ban(5, 0);
  ban[0] = 1;  // kill edge 0-1
  const auto p = g.shortest_path(0, 3, ban);
  EXPECT_EQ(p, (std::vector<int>{2, 3}));
}

TEST(Graph, ShortestPathUnreachable) {
  const Graph g(3, {{0, 0, 1, 1.0}});
  EXPECT_TRUE(g.shortest_path(0, 2).empty());
}

TEST(Graph, PathNodesWalksEdges) {
  const Graph g = diamond();
  const auto nodes = g.path_nodes(0, {0, 1});
  EXPECT_EQ(nodes, (std::vector<int>{0, 1, 3}));
}

TEST(Graph, KShortestReturnsOrderedDistinctPaths) {
  const Graph g = diamond();
  const auto paths = g.k_shortest_paths(0, 3, 5);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_DOUBLE_EQ(g.path_weight(paths[0]), 2.0);
  EXPECT_DOUBLE_EQ(g.path_weight(paths[1]), 4.0);
  EXPECT_DOUBLE_EQ(g.path_weight(paths[2]), 5.0);
}

TEST(Graph, KShortestRespectsMaxWeight) {
  const Graph g = diamond();
  const auto paths = g.k_shortest_paths(0, 3, 5, /*max_weight=*/4.0);
  EXPECT_EQ(paths.size(), 2u);
}

TEST(Graph, KShortestHandlesParallelEdges) {
  const Graph g(2, {{0, 0, 1, 1.0}, {1, 0, 1, 2.0}});
  const auto paths = g.k_shortest_paths(0, 1, 3);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], (std::vector<int>{0}));
  EXPECT_EQ(paths[1], (std::vector<int>{1}));
}

TEST(Graph, RejectsBadEdgeIds) {
  EXPECT_THROW(Graph(2, {{5, 0, 1, 1.0}}), std::logic_error);
}

// Properties on random graphs: paths are loopless walks, sorted by weight,
// and pairwise distinct.
class KspProperty : public ::testing::TestWithParam<int> {};

TEST_P(KspProperty, PathsAreLooplessSortedDistinct) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  const int n = rng.uniform_int(5, 12);
  std::vector<Edge> edges;
  int id = 0;
  // Random connected-ish graph: ring + random chords.
  for (int i = 0; i < n; ++i) {
    edges.push_back({id++, i, (i + 1) % n, rng.uniform(1.0, 5.0)});
  }
  for (int i = 0; i < n; ++i) {
    const int a = rng.uniform_int(0, n - 1);
    const int b = rng.uniform_int(0, n - 1);
    if (a != b) edges.push_back({id++, a, b, rng.uniform(1.0, 5.0)});
  }
  const Graph g(n, std::move(edges));
  const int src = 0, dst = n / 2;
  const auto paths = g.k_shortest_paths(src, dst, 6);
  ASSERT_FALSE(paths.empty());
  std::set<std::vector<int>> seen;
  double prev = 0.0;
  for (const auto& p : paths) {
    EXPECT_TRUE(seen.insert(p).second) << "duplicate path";
    const double w = g.path_weight(p);
    EXPECT_GE(w, prev - 1e-12) << "paths not sorted";
    prev = w;
    // Loopless: node sequence has no repeats.
    const auto nodes = g.path_nodes(src, p);
    std::set<int> uniq(nodes.begin(), nodes.end());
    EXPECT_EQ(uniq.size(), nodes.size()) << "path has a loop";
    EXPECT_EQ(nodes.back(), dst);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KspProperty, ::testing::Range(0, 12));

}  // namespace
}  // namespace arrow::optical
