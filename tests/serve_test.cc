// Daemon suite for arrowctl serve (ctest label: serve): wire protocol
// units, TickEngine lifecycle, the socket front end, and two drills —
// SIGTERM drain (self-exec child daemon, parent signals, journal + final
// RunReport must land) and restart recovery (a faulted successor engine
// adopts the journaled plan via carry-forward).
//
// This file supplies its own main(): the drain drill needs argv[0] and an
// environment-variable child mode, which gtest_main cannot provide.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>

#include "controller/journal.h"
#include "obs/json.h"
#include "resilience/chaos.h"
#include "serve/engine.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "solver/lp.h"
#include "topo/builders.h"
#include "topo/io.h"
#include "traffic/traffic.h"
#include "util/clock.h"
#include "util/fs.h"
#include "util/rng.h"

namespace arrow {
namespace {

const char* g_argv0 = "";

// Child-mode marker: directory for the child daemon's socket/journal/obs.
constexpr const char* kServeChildEnv = "ARROW_SERVE_CHILD";

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::create_directories(dir);
  return dir;
}

topo::Network test_net() { return topo::build_testbed(); }

traffic::TrafficMatrix test_tm(const topo::Network& net, std::uint64_t seed) {
  util::Rng rng(seed);
  traffic::TrafficParams tp;
  tp.num_matrices = 1;
  return traffic::generate_traffic(net, tp, rng)[0];
}

serve::EngineConfig test_config() {
  serve::EngineConfig config;
  config.ctrl.te_budget_s = 5.0;  // generous: sanitizer builds are slow
  config.ctrl.tunnels.tunnels_per_flow = 4;
  config.ctrl.arrow.tickets.num_tickets = 4;
  config.ctrl.scenarios.probability_cutoff = 0.002;
  return config;
}

// --- protocol units ---------------------------------------------------------

TEST(ServeProtocol, ParseRequestValidatesShapeAndOp) {
  obs::JsonValue v;
  std::string err;
  EXPECT_FALSE(serve::parse_request("not json", &v, &err));
  EXPECT_FALSE(serve::parse_request("[1,2]", &v, &err));
  EXPECT_FALSE(serve::parse_request("{\"x\": 1}", &v, &err));  // no op
  EXPECT_TRUE(serve::parse_request("{\"op\": \"hello\"}", &v, &err)) << err;
  EXPECT_EQ(v.text("op"), "hello");
}

TEST(ServeProtocol, ReplyLinesAreSingleLineJsonWithOkField) {
  obs::JsonValue fields;
  fields.object["n"] = serve::jnum(2.5);
  const std::string ok = serve::ok_line(std::move(fields));
  ASSERT_FALSE(ok.empty());
  EXPECT_EQ(ok.back(), '\n');
  EXPECT_EQ(ok.find('\n'), ok.size() - 1);  // exactly one: NDJSON framing
  obs::JsonValue back;
  ASSERT_TRUE(obs::json_parse(ok.substr(0, ok.size() - 1), &back));
  EXPECT_TRUE(back.find("ok")->boolean);
  EXPECT_DOUBLE_EQ(back.find("n")->number, 2.5);

  const std::string err = serve::error_line("boom \"quoted\"");
  ASSERT_TRUE(obs::json_parse(err.substr(0, err.size() - 1), &back));
  EXPECT_FALSE(back.find("ok")->boolean);
  EXPECT_EQ(back.text("error"), "boom \"quoted\"");
}

TEST(ServeProtocol, ParseDemandsValidates) {
  traffic::TrafficMatrix tm;
  std::string err;
  obs::JsonValue v;
  ASSERT_TRUE(obs::json_parse("[[0, 1, 10.5], [1, 2, 0]]", &v));
  ASSERT_TRUE(serve::parse_demands(v, &tm, &err)) << err;
  ASSERT_EQ(tm.demands.size(), 2u);
  EXPECT_EQ(tm.demands[0].src, 0);
  EXPECT_EQ(tm.demands[0].dst, 1);
  EXPECT_DOUBLE_EQ(tm.demands[0].gbps, 10.5);

  for (const char* bad : {"{}", "[[0, 1]]", "[[0, 0, 5]]", "[[-1, 1, 5]]",
                          "[[0, 1, -5]]", "[[0, 1, \"x\"]]"}) {
    ASSERT_TRUE(obs::json_parse(bad, &v)) << bad;
    EXPECT_FALSE(serve::parse_demands(v, &tm, &err)) << bad;
  }
}

TEST(ServeProtocol, HttpGetDetectionAndResponseFraming) {
  std::string target;
  EXPECT_TRUE(serve::is_http_get("GET /metrics HTTP/1.1\r", &target));
  EXPECT_EQ(target, "/metrics");
  EXPECT_TRUE(serve::is_http_get("GET /report", &target));
  EXPECT_EQ(target, "/report");
  EXPECT_FALSE(serve::is_http_get("{\"op\": \"hello\"}", &target));
  EXPECT_FALSE(serve::is_http_get("GET ", &target));

  const std::string resp = serve::http_response("body", "text/plain");
  EXPECT_EQ(resp.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
  EXPECT_NE(resp.find("Content-Length: 4\r\n"), std::string::npos);
  EXPECT_EQ(resp.substr(resp.size() - 4), "body");
}

TEST(ServeProtocol, SchemeNamesRoundTrip) {
  ctrl::Scheme s = ctrl::Scheme::kEcmp;
  EXPECT_TRUE(serve::scheme_from_string("ARROW", &s));
  EXPECT_EQ(s, ctrl::Scheme::kArrow);
  EXPECT_TRUE(serve::scheme_from_string("FFC-1", &s));
  EXPECT_EQ(s, ctrl::Scheme::kFfc1);
  EXPECT_FALSE(serve::scheme_from_string("nope", &s));
}

// --- engine lifecycle -------------------------------------------------------

TEST(ServeEngine, TickCutRepairAndReport) {
  const topo::Network net = test_net();
  serve::TickEngine engine(test_config());
  EXPECT_FALSE(engine.has_topology());

  const auto topo_res = engine.set_topology(net);
  ASSERT_TRUE(topo_res.ok) << topo_res.error;
  EXPECT_EQ(topo_res.sites, net.num_sites);
  EXPECT_EQ(topo_res.fibers, static_cast<int>(net.optical.fibers.size()));
  EXPECT_GT(topo_res.scenarios, 0);

  const auto tm = test_tm(net, 7);
  const auto t1 = engine.tick(tm);
  ASSERT_TRUE(t1.ok) << t1.error;
  EXPECT_EQ(t1.tick, 1);
  EXPECT_FALSE(t1.rung_regression);  // first tick can't regress
  EXPECT_GT(t1.seconds, 0.0);

  const auto t2 = engine.tick(tm);
  ASSERT_TRUE(t2.ok) << t2.error;
  EXPECT_EQ(t2.tick, 2);
  EXPECT_EQ(engine.ticks(), 2);
  EXPECT_GT(engine.tick_p99_s(), 0.0);
  EXPECT_GE(engine.tick_p99_s(), engine.tick_p50_s());

  const auto cut = engine.cut(0);
  ASSERT_TRUE(cut.ok) << cut.error;
  EXPECT_EQ(engine.active_cuts(), 1);
  EXPECT_FALSE(engine.cut(0).ok);  // already cut
  EXPECT_TRUE(engine.repair(0));
  EXPECT_EQ(engine.active_cuts(), 0);
  EXPECT_FALSE(engine.repair(0));  // not cut

  const obs::RunReport report = engine.report();
  EXPECT_EQ(report.te_runs, 2);
  EXPECT_EQ(report.cuts_handled, 1);
  EXPECT_GT(report.availability, 0.0);

  engine.drain();
  EXPECT_TRUE(engine.drained());
  EXPECT_FALSE(engine.tick(tm).ok);  // drained engines refuse work
  engine.drain();  // idempotent
}

// Cut fast-path drill: with a scheme whose registry capabilities advertise
// supports_local_repair, a cut must be answered by weaving the installed
// plan around the failure (or an honest global fallback) — never by the
// unplanned-cut path — and the repair telemetry must land in the RunReport.
TEST(ServeEngine, ReWeaveCutFastPathDrill) {
  serve::EngineConfig config = test_config();
  config.ctrl.scheme = ctrl::Scheme::kReWeave;
  serve::TickEngine engine(config);

  ASSERT_TRUE(engine.set_topology(test_net()).ok);
  const auto tm = test_tm(test_net(), 7);
  const auto t1 = engine.tick(tm);
  ASSERT_TRUE(t1.ok) << t1.error;

  const auto cut = engine.cut(0);
  ASSERT_TRUE(cut.ok) << cut.error;
  EXPECT_FALSE(cut.planned);  // ReWeave precomputes nothing optical
  EXPECT_TRUE(cut.local_repair || cut.fell_back_global);
  if (cut.local_repair) {
    // Detection + repair solve + rebalance: strictly positive, and far
    // below an optical restoration's ROADM reconfiguration budget.
    EXPECT_GT(cut.latency_s, 0.0);
  }

  const obs::RunReport report = engine.report();
  EXPECT_EQ(report.cuts_handled, 1);
  EXPECT_EQ(report.local_repairs + report.local_repair_fallbacks, 1);
  EXPECT_GE(report.local_repair_seconds, 0.0);
  if (report.local_repairs == 1) {
    EXPECT_GT(report.restoration_p99_s, 0.0);
  }

  // The next tick re-solves from scratch and must stay healthy with the
  // fiber still dark.
  const auto t2 = engine.tick(tm);
  ASSERT_TRUE(t2.ok) << t2.error;
  EXPECT_TRUE(engine.repair(0));
  engine.drain();
}

TEST(ServeEngine, RefusesOutOfOrderRequests) {
  serve::TickEngine engine(test_config());
  EXPECT_FALSE(engine.tick(test_tm(test_net(), 7)).ok);  // no topology
  EXPECT_FALSE(engine.cut(0).ok);

  ASSERT_TRUE(engine.set_topology(test_net()).ok);
  EXPECT_FALSE(engine.cut(0).ok);  // no plan yet: tick first
  EXPECT_FALSE(engine.tick(traffic::TrafficMatrix{}).ok);  // empty matrix
  ASSERT_TRUE(engine.tick(test_tm(test_net(), 7)).ok);
  EXPECT_FALSE(engine.cut(999).ok);  // no such fiber
}

// --- handle_line (socket-free server dispatch) ------------------------------

class ServeDispatch : public ::testing::Test {
 protected:
  ServeDispatch() : engine_(test_config()), server_(engine_, {}) {}

  obs::JsonValue call(const std::string& line) {
    bool close_conn = false;
    bool stop_server = false;
    const std::string reply = server_.handle_line(line, &close_conn,
                                                  &stop_server);
    obs::JsonValue v;
    std::string err;
    EXPECT_TRUE(obs::json_parse(reply, &v, &err))
        << err << " in reply: " << reply;
    return v;
  }

  serve::TickEngine engine_;
  serve::Server server_;
};

TEST_F(ServeDispatch, FullSessionOverDispatch) {
  EXPECT_TRUE(call("{\"op\": \"hello\"}").find("ok")->boolean);
  EXPECT_FALSE(call("{\"op\": \"wat\"}").find("ok")->boolean);
  EXPECT_FALSE(call("garbage").find("ok")->boolean);

  // Topology via inline text: daemons on remote hosts don't share a
  // filesystem with their clients.
  const std::string topo_path = temp_dir("arrow_serve_dispatch") + "/net.topo";
  topo::save_network_file(test_net(), topo_path);
  const auto text = util::read_file(topo_path);
  ASSERT_TRUE(text.has_value());
  obs::JsonValue req;
  req.type = obs::JsonValue::Type::kObject;
  req.object["op"] = serve::jstr("topology");
  req.object["text"] = serve::jstr(*text);
  const auto topo_reply = call(obs::json_emit(req));
  ASSERT_TRUE(topo_reply.find("ok")->boolean)
      << topo_reply.text("error");
  EXPECT_EQ(topo_reply.find("sites")->number, test_net().num_sites);

  // Tick with inline demands built from the generated matrix.
  obs::JsonValue demands;
  demands.type = obs::JsonValue::Type::kArray;
  for (const auto& d : test_tm(test_net(), 7).demands) {
    obs::JsonValue row;
    row.type = obs::JsonValue::Type::kArray;
    row.array = {serve::jnum(d.src), serve::jnum(d.dst), serve::jnum(d.gbps)};
    demands.array.push_back(std::move(row));
  }
  obs::JsonValue tick_req;
  tick_req.type = obs::JsonValue::Type::kObject;
  tick_req.object["op"] = serve::jstr("tick");
  tick_req.object["demands"] = std::move(demands);
  const auto tick_reply = call(obs::json_emit(tick_req));
  ASSERT_TRUE(tick_reply.find("ok")->boolean) << tick_reply.text("error");
  EXPECT_EQ(tick_reply.find("tick")->number, 1.0);

  const auto cut_reply = call("{\"op\": \"cut\", \"fiber\": 0}");
  ASSERT_TRUE(cut_reply.find("ok")->boolean) << cut_reply.text("error");
  EXPECT_TRUE(call("{\"op\": \"repair\", \"fiber\": 0}").find("ok")->boolean);

  const auto query = call("{\"op\": \"query\"}");
  EXPECT_TRUE(query.find("topology")->boolean);
  EXPECT_EQ(query.find("ticks")->number, 1.0);

  const auto report = call("{\"op\": \"report\"}");
  ASSERT_TRUE(report.find("ok")->boolean);
  EXPECT_EQ(report.find("report")->find("te_runs")->number, 1.0);

  const auto metrics = call("{\"op\": \"metrics\"}");
  ASSERT_TRUE(metrics.find("ok")->boolean);
  EXPECT_NE(metrics.text("metrics").find("arrow_serve_ticks_total"),
            std::string::npos);
}

TEST_F(ServeDispatch, HttpScrapesAndShutdown) {
  bool close_conn = false;
  bool stop_server = false;
  const std::string metrics =
      server_.handle_line("GET /metrics HTTP/1.1", &close_conn, &stop_server);
  EXPECT_TRUE(close_conn);
  EXPECT_FALSE(stop_server);
  EXPECT_EQ(metrics.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
  EXPECT_NE(metrics.find("arrow_serve_requests_total"), std::string::npos);

  const std::string report =
      server_.handle_line("GET /report", &close_conn, &stop_server);
  EXPECT_TRUE(close_conn);
  EXPECT_NE(report.find("application/json"), std::string::npos);

  const std::string missing =
      server_.handle_line("GET /nope", &close_conn, &stop_server);
  EXPECT_EQ(missing.rfind("HTTP/1.0 404", 0), 0u);

  server_.handle_line("{\"op\": \"shutdown\"}", &close_conn, &stop_server);
  EXPECT_TRUE(stop_server);
}

// --- socket round trip ------------------------------------------------------

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// Sends one NDJSON request and reads one reply line.
std::string round_trip(int fd, const std::string& line) {
  const std::string out = line + "\n";
  if (::send(fd, out.data(), out.size(), 0) !=
      static_cast<ssize_t>(out.size())) {
    return "";
  }
  std::string reply;
  char ch = 0;
  while (::recv(fd, &ch, 1, 0) == 1) {
    if (ch == '\n') break;
    reply.push_back(ch);
  }
  return reply;
}

TEST(ServeSocket, TickCutQueryShutdownOverUnixSocket) {
  const std::string dir = temp_dir("arrow_serve_socket");
  const std::string sock = dir + "/daemon.sock";
  const std::string topo_path = dir + "/net.topo";
  topo::save_network_file(test_net(), topo_path);
  const std::string tm_path = dir + "/traffic.tm";
  topo::save_traffic_file(test_tm(test_net(), 7), tm_path);

  serve::TickEngine engine(test_config());
  serve::ServerConfig sc;
  sc.unix_path = sock;
  serve::Server server(engine, sc);
  ASSERT_TRUE(server.start()) << server.error();
  std::thread loop([&server] { server.run(); });

  const int fd = connect_unix(sock);
  ASSERT_GE(fd, 0);
  obs::JsonValue v;
  ASSERT_TRUE(obs::json_parse(
      round_trip(fd, "{\"op\": \"topology\", \"path\": \"" + topo_path +
                         "\"}"),
      &v));
  ASSERT_TRUE(v.find("ok")->boolean) << v.text("error");

  ASSERT_TRUE(obs::json_parse(
      round_trip(fd, "{\"op\": \"tick\", \"path\": \"" + tm_path + "\"}"),
      &v));
  ASSERT_TRUE(v.find("ok")->boolean) << v.text("error");
  EXPECT_EQ(v.find("tick")->number, 1.0);

  ASSERT_TRUE(obs::json_parse(
      round_trip(fd, "{\"op\": \"cut\", \"fiber\": 0}"), &v));
  ASSERT_TRUE(v.find("ok")->boolean) << v.text("error");

  // A second client sees the same engine state.
  const int fd2 = connect_unix(sock);
  ASSERT_GE(fd2, 0);
  ASSERT_TRUE(obs::json_parse(round_trip(fd2, "{\"op\": \"query\"}"), &v));
  EXPECT_EQ(v.find("ticks")->number, 1.0);
  EXPECT_EQ(v.find("active_cuts")->number, 1.0);
  ::close(fd2);

  ASSERT_TRUE(obs::json_parse(round_trip(fd, "{\"op\": \"shutdown\"}"), &v));
  EXPECT_TRUE(v.find("draining")->boolean);
  loop.join();
  ::close(fd);
  EXPECT_TRUE(engine.drained());
  EXPECT_EQ(engine.report().te_runs, 1);
}

// --- SIGTERM drain drill -----------------------------------------------------

volatile std::sig_atomic_t g_child_stop = 0;
void child_stop_handler(int) { g_child_stop = 1; }

// Child role: a real daemon — journal + obs enabled, topology loaded, one
// tick served — listening on dir/daemon.sock until SIGTERM, then draining
// through the normal exit path.
int serve_child(const std::string& dir) {
  serve::EngineConfig config = test_config();
  config.ctrl.journal_dir = dir;
  config.ctrl.obs.enabled = true;
  config.ctrl.obs.dir = dir;
  config.ctrl.obs.run_id = "drill";
  serve::TickEngine engine(config);
  if (!engine.set_topology(test_net()).ok) return 3;
  if (!engine.tick(test_tm(test_net(), 7)).ok) return 3;

  std::signal(SIGTERM, child_stop_handler);
  serve::ServerConfig sc;
  sc.unix_path = dir + "/daemon.sock";
  sc.stop_check = [] { return g_child_stop != 0; };
  serve::Server server(engine, sc);
  if (!server.start()) return 3;
  if (!util::write_file_atomic(dir + "/ready", "ok")) return 3;
  server.run();
  return engine.drained() ? 0 : 4;
}

bool wait_for_file(const std::string& path, double timeout_s) {
  for (double waited = 0.0; waited < timeout_s; waited += 0.01) {
    if (std::filesystem::exists(path)) return true;
    util::sleep_s(0.01);
  }
  return false;
}

TEST(ServeChaos, SigtermDrainsJournalAndFinalRunReport) {
  const std::string dir = temp_dir("arrow_serve_drain");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  const int pid = resilience::spawn_self(g_argv0, {{kServeChildEnv, dir}});
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(wait_for_file(dir + "/ready", 120.0));

  // The daemon is live: prove it serves, then deliver SIGTERM.
  const int fd = connect_unix(dir + "/daemon.sock");
  ASSERT_GE(fd, 0);
  obs::JsonValue v;
  ASSERT_TRUE(obs::json_parse(round_trip(fd, "{\"op\": \"query\"}"), &v));
  EXPECT_EQ(v.find("ticks")->number, 1.0);
  ::close(fd);

  ASSERT_TRUE(resilience::kill_child(pid, /*delay_s=*/0.0, SIGTERM));
  const auto exit = resilience::wait_child(pid);
  EXPECT_FALSE(exit.signaled);  // handled, not killed
  EXPECT_EQ(exit.code, 0);

  // The drain's three artifacts: journal closed cleanly with the plan
  // intact, and the final RunReport written.
  const ctrl::JournalState state =
      ctrl::StateJournal(ctrl::StateJournal::file_in(dir)).load();
  EXPECT_FALSE(state.in_flight);
  EXPECT_TRUE(state.has_plan);
  obs::RunReport report;
  const auto report_text = util::read_file(dir + "/report_drill.json");
  ASSERT_TRUE(report_text.has_value());
  ASSERT_TRUE(obs::RunReport::from_json(*report_text, &report));
  EXPECT_EQ(report.te_runs, 1);
}

// --- restart recovery --------------------------------------------------------

TEST(ServeChaos, RestartedEngineRecoversJournaledPlanIntoCarryForward) {
  const std::string dir = temp_dir("arrow_serve_recover");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  serve::EngineConfig config = test_config();
  config.ctrl.journal_dir = dir;

  // Daemon 1: serves one tick and drains cleanly — its plan stays journaled.
  {
    serve::TickEngine engine(config);
    ASSERT_TRUE(engine.set_topology(test_net()).ok);
    ASSERT_TRUE(engine.tick(test_tm(test_net(), 7)).ok);
    engine.drain();
  }

  // Daemon 2: same journal dir, every LP solve faulted. Its first tick must
  // adopt daemon 1's journaled plan and serve it via carry-forward — not
  // cold ECMP.
  solver::ScopedSolveObserver storm(
      [](const solver::Lp&, solver::LpSolution& solution) {
        solution.status = solver::LpStatus::kNumericalError;
      });
  serve::TickEngine engine(config);
  ASSERT_TRUE(engine.set_topology(test_net()).ok);
  const auto res = engine.tick(test_tm(test_net(), 7));
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(res.journal_recovered);
  EXPECT_EQ(res.rung, ctrl::Rung::kCarryForward);
}

}  // namespace
}  // namespace arrow

int main(int argc, char** argv) {
  if (const char* dir = std::getenv(arrow::kServeChildEnv)) {
    return arrow::serve_child(dir);
  }
  arrow::g_argv0 = argv[0];
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
