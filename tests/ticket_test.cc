// Tests for the LotteryTicket abstraction: Algorithm 1's randomized
// rounding, the feasibility filter, and Theorem 3.1's probability math
// (validated against Monte-Carlo draws).
#include <cmath>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "optical/rwa.h"
#include "ticket/ticket.h"
#include "topo/builders.h"

namespace arrow::ticket {
namespace {

class TicketFixture : public ::testing::Test {
 protected:
  TicketFixture() : net_(topo::build_b4()) {
    cuts_ = {3};
    rwa_ = optical::solve_rwa(net_, cuts_);
  }
  topo::Network net_;
  std::vector<topo::FiberId> cuts_;
  optical::RwaResult rwa_;
};

TEST_F(TicketFixture, GeneratesRequestedCount) {
  TicketParams p;
  p.num_tickets = 8;
  util::Rng rng(1);
  const TicketSet set = generate_tickets(net_, cuts_, rwa_, p, rng);
  EXPECT_LE(static_cast<int>(set.tickets.size()), 8);
  EXPECT_GE(set.tickets.size(), 1u);
  EXPECT_EQ(set.failed_links.size(), rwa_.links.size());
}

TEST_F(TicketFixture, WavesWithinBounds) {
  TicketParams p;
  p.num_tickets = 30;
  p.delta = 3;
  util::Rng rng(2);
  const TicketSet set = generate_tickets(net_, cuts_, rwa_, p, rng);
  for (const auto& t : set.tickets) {
    ASSERT_EQ(t.waves.size(), rwa_.links.size());
    for (std::size_t li = 0; li < t.waves.size(); ++li) {
      EXPECT_GE(t.waves[li], 0);
      EXPECT_LE(t.waves[li], rwa_.links[li].lost_waves);
      // Per-path counts sum to the link count.
      int sum = 0;
      for (int w : t.path_waves[li]) sum += w;
      EXPECT_EQ(sum, t.waves[li]);
    }
  }
}

TEST_F(TicketFixture, TicketsAreDeduplicated) {
  TicketParams p;
  p.num_tickets = 40;
  util::Rng rng(3);
  const TicketSet set = generate_tickets(net_, cuts_, rwa_, p, rng);
  std::set<std::vector<int>> seen;
  for (const auto& t : set.tickets) {
    EXPECT_TRUE(seen.insert(t.waves).second) << "duplicate ticket";
  }
}

TEST_F(TicketFixture, DeterministicGivenSeed) {
  TicketParams p;
  p.num_tickets = 10;
  util::Rng r1(7), r2(7);
  const TicketSet a = generate_tickets(net_, cuts_, rwa_, p, r1);
  const TicketSet b = generate_tickets(net_, cuts_, rwa_, p, r2);
  ASSERT_EQ(a.tickets.size(), b.tickets.size());
  for (std::size_t i = 0; i < a.tickets.size(); ++i) {
    EXPECT_EQ(a.tickets[i].waves, b.tickets[i].waves);
  }
}

TEST_F(TicketFixture, FeasibilityFilterOnlyEmitsRealizablePlans) {
  TicketParams p;
  p.num_tickets = 20;
  p.delta = 3;
  p.feasibility_filter = true;
  util::Rng rng(11);
  const TicketSet set = generate_tickets(net_, cuts_, rwa_, p, rng);
  for (const auto& t : set.tickets) {
    auto links = rwa_.links;
    EXPECT_TRUE(
        optical::assign_slots_first_fit(net_, cuts_, links, t.path_waves));
  }
}

TEST_F(TicketFixture, GbpsConsistentWithPathModulation) {
  TicketParams p;
  p.num_tickets = 12;
  util::Rng rng(13);
  const TicketSet set = generate_tickets(net_, cuts_, rwa_, p, rng);
  for (const auto& t : set.tickets) {
    for (std::size_t li = 0; li < t.gbps.size(); ++li) {
      double expect = 0.0;
      for (std::size_t pi = 0; pi < t.path_waves[li].size(); ++pi) {
        expect += t.path_waves[li][pi] * rwa_.links[li].paths[pi].gbps;
      }
      EXPECT_NEAR(t.gbps[li], expect, 1e-9);
    }
  }
}

TEST_F(TicketFixture, NaiveTicketFloorsTheLp) {
  const LotteryTicket naive = naive_ticket(rwa_);
  ASSERT_EQ(naive.waves.size(), rwa_.links.size());
  for (std::size_t li = 0; li < naive.waves.size(); ++li) {
    EXPECT_LE(naive.waves[li],
              static_cast<int>(std::floor(rwa_.links[li].fractional_waves() +
                                          1e-9)));
    EXPECT_GE(naive.waves[li], 0);
  }
}

TEST(TicketDistribution, TiedSharesBreakTowardLowerPathIndex) {
  // Regression: waves are distributed over surrogate paths largest
  // fractional share first via std::sort, which is unstable — paths with
  // EQUAL shares landed in implementation-defined order, so the same RWA
  // could yield different tickets across platforms / libstdc++ versions.
  // Ties must deterministically favour the lower path index.
  // Enough tied paths (> libstdc++'s ~16-element insertion-sort threshold)
  // that an unstable sort actually reorders equal keys.
  constexpr int kPaths = 20;
  optical::RwaResult rwa;
  optical::LinkRestoration lr;
  lr.link = 0;
  lr.lost_waves = kPaths;
  lr.original_gbps = 100.0;
  for (int pi = 0; pi < kPaths; ++pi) {
    optical::SurrogatePath p;
    p.gbps = 100.0;
    p.fractional_waves = 0.5;          // all paths exactly tied
    p.usable_slots = {0, 1};           // room for 2 waves each
    lr.paths.push_back(std::move(p));
  }
  rwa.links.push_back(std::move(lr));

  // naive_ticket wants floor(20 * 0.5) = 10 waves: 2 on each of the first
  // five paths, 0 on the rest — never any other permutation of the ties.
  const LotteryTicket t = naive_ticket(rwa);
  ASSERT_EQ(t.path_waves.size(), 1u);
  std::vector<int> expect(kPaths, 0);
  for (int pi = 0; pi < 5; ++pi) expect[static_cast<std::size_t>(pi)] = 2;
  EXPECT_EQ(t.path_waves[0], expect);
  EXPECT_EQ(t.waves[0], 10);
}

TEST(TicketTheory, RhoFormula) {
  EXPECT_DOUBLE_EQ(optimality_probability(0.0, 100), 0.0);
  EXPECT_DOUBLE_EQ(optimality_probability(1.0, 1), 1.0);
  EXPECT_NEAR(optimality_probability(0.1, 10), 1.0 - std::pow(0.9, 10),
              1e-12);
  // Monotone in |Z|.
  EXPECT_LT(optimality_probability(0.05, 5), optimality_probability(0.05, 50));
}

// Theorem 3.1 validation: the closed-form single-draw probability of a
// ticket matches Monte-Carlo frequency of Algorithm 1's raw draws.
class TheoremValidation : public ::testing::TestWithParam<int> {};

TEST_P(TheoremValidation, KappaMatchesMonteCarlo) {
  const topo::Network net = topo::build_b4();
  const std::vector<topo::FiberId> cuts{static_cast<topo::FiberId>(
      GetParam() % static_cast<int>(net.optical.fibers.size()))};
  const optical::RwaResult rwa = optical::solve_rwa(net, cuts);
  if (rwa.links.empty()) GTEST_SKIP() << "cut carries no IP links";

  TicketParams p;
  p.num_tickets = 1;
  p.delta = 2;
  p.feasibility_filter = false;  // theorem speaks about raw draws
  p.max_attempts_factor = 1;

  // Empirical distribution of raw draws (ticket of each 1-draw set).
  std::map<std::vector<int>, int> freq;
  const int trials = 6000;
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 997 + 1);
  for (int i = 0; i < trials; ++i) {
    const TicketSet set = generate_tickets(net, cuts, rwa, p, rng);
    if (!set.tickets.empty()) ++freq[set.tickets[0].waves];
  }
  // Compare the top few observed tickets against the closed form. The
  // closed form covers the pre-path-distribution wave counts; skip targets
  // whose per-path capacity clamps the count (realized < wanted).
  int checked = 0;
  for (const auto& [waves, count] : freq) {
    if (count < trials / 50) continue;
    const double kappa = ticket_probability(rwa, waves, p);
    if (kappa <= 0.0) continue;  // clamped by path capacity
    EXPECT_NEAR(static_cast<double>(count) / trials, kappa,
                0.05 + 3.0 * std::sqrt(kappa * (1 - kappa) / trials))
        << "ticket frequency vs Theorem 3.1 kappa";
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Cuts, TheoremValidation, ::testing::Values(0, 3, 8));

TEST(TicketTheory, MoreTicketsCoverOptimalMoreOften) {
  // rho^q = 1-(1-kappa)^|Z| increasing in |Z| — sanity on real kappa values.
  const topo::Network net = topo::build_b4();
  const optical::RwaResult rwa = optical::solve_rwa(net, {4});
  if (rwa.links.empty()) GTEST_SKIP();
  TicketParams p;
  const LotteryTicket naive = naive_ticket(rwa);
  const double kappa = ticket_probability(rwa, naive.waves, p);
  if (kappa <= 0.0) GTEST_SKIP();
  double prev = 0.0;
  for (int z : {1, 5, 20, 100}) {
    const double rho = optimality_probability(kappa, z);
    EXPECT_GT(rho, prev);
    prev = rho;
  }
}

}  // namespace
}  // namespace arrow::ticket
