// Tests for the event-driven WAN controller simulation.
#include <gtest/gtest.h>

#include "controller/controller.h"
#include "topo/builders.h"

namespace arrow::ctrl {
namespace {

class ControllerFixture : public ::testing::Test {
 protected:
  ControllerFixture() : net_(topo::build_b4()) {
    util::Rng rng(7);
    traffic::TrafficParams tp;
    tp.num_matrices = 2;
    tms_ = traffic::generate_traffic(net_, tp, rng);
    config_.horizon_s = 2.0 * 3600.0;  // two hours
    config_.te_interval_s = 600.0;
    config_.tunnels.tunnels_per_flow = 4;
    config_.arrow.tickets.num_tickets = 4;
    config_.scenarios.probability_cutoff = 0.002;
    config_.demand_scale = 0.5;
  }
  topo::Network net_;
  std::vector<traffic::TrafficMatrix> tms_;
  ControllerConfig config_;
};

TEST_F(ControllerFixture, NoFailuresMeansFullAvailabilityAtLowLoad) {
  util::Rng rng(1);
  config_.scheme = Scheme::kFfc1;
  config_.demand_scale = 0.15;  // low enough for FFC-1 to admit everything
  const auto report = run_controller(net_, tms_, {}, config_, rng);
  EXPECT_GT(report.offered_gbps_seconds, 0.0);
  EXPECT_NEAR(report.availability(), 1.0, 1e-3);
  EXPECT_EQ(report.cuts_handled, 0);
  EXPECT_EQ(report.te_runs, 2);
  EXPECT_NEAR(report.lost_gbps_seconds, 0.0,
              1e-6 * report.offered_gbps_seconds);
}

TEST_F(ControllerFixture, DeliveredNeverExceedsOffered) {
  util::Rng rng(2);
  const auto trace = sample_failure_trace(net_, config_.horizon_s,
                                          /*cuts_per_day=*/12.0, rng);
  for (Scheme s : {Scheme::kArrow, Scheme::kFfc1, Scheme::kEcmp}) {
    config_.scheme = s;
    util::Rng run_rng(3);
    const auto report = run_controller(net_, tms_, trace, config_, run_rng);
    EXPECT_LE(report.delivered_gbps_seconds,
              report.offered_gbps_seconds + 1e-6)
        << to_string(s);
    EXPECT_GE(report.availability(), 0.0);
    EXPECT_LE(report.availability(), 1.0 + 1e-9);
  }
}

TEST_F(ControllerFixture, ArrowRestoresWhatFfcCannot) {
  // One long-lived cut on a fiber that carries traffic.
  topo::FiberId busy = 0;
  double best = 0.0;
  for (const auto& f : net_.optical.fibers) {
    const double g = net_.provisioned_gbps(f.id);
    if (g > best) {
      best = g;
      busy = f.id;
    }
  }
  std::vector<FailureEvent> trace{{600.0, busy, 3.0 * 3600.0}};
  // Guarantee a precomputed plan exists for this cut.
  config_.explicit_scenarios = {{{busy}, 0.01}};

  config_.scheme = Scheme::kArrow;
  util::Rng r1(5);
  const auto arrow_report = run_controller(net_, tms_, trace, config_, r1);
  config_.scheme = Scheme::kFfc1;
  util::Rng r2(5);
  const auto ffc_report = run_controller(net_, tms_, trace, config_, r2);

  EXPECT_EQ(arrow_report.cuts_handled, 1);
  EXPECT_EQ(arrow_report.cuts_with_plan, 1);
  EXPECT_GT(arrow_report.worst_restoration_s, 0.0);
  // With restoration the delivered volume under the cut can only be higher
  // (same trace, same demand).
  EXPECT_GE(arrow_report.delivered_gbps_seconds,
            ffc_report.delivered_gbps_seconds - 1e-6);
}

TEST_F(ControllerFixture, NoiseLoadingShrinksTransientLoss) {
  topo::FiberId busy = 0;
  double best = 0.0;
  for (const auto& f : net_.optical.fibers) {
    const double g = net_.provisioned_gbps(f.id);
    if (g > best) {
      best = g;
      busy = f.id;
    }
  }
  std::vector<FailureEvent> trace{{600.0, busy, 1.5 * 3600.0}};
  config_.explicit_scenarios = {{{busy}, 0.01}};
  config_.scheme = Scheme::kArrow;

  config_.latency.noise_loading = true;
  util::Rng r1(6);
  const auto fast = run_controller(net_, tms_, trace, config_, r1);
  config_.latency.noise_loading = false;
  util::Rng r2(6);
  const auto slow = run_controller(net_, tms_, trace, config_, r2);

  EXPECT_LT(fast.worst_restoration_s, 60.0);
  EXPECT_GT(slow.worst_restoration_s, 300.0);
  EXPECT_LE(fast.transient_loss_gbps_seconds,
            slow.transient_loss_gbps_seconds + 1e-6);
}

TEST_F(ControllerFixture, TimelineIsTimeOrdered) {
  util::Rng rng(8);
  const auto trace =
      sample_failure_trace(net_, config_.horizon_s, 24.0, rng);
  config_.scheme = Scheme::kArrow;
  util::Rng run_rng(9);
  const auto report = run_controller(net_, tms_, trace, config_, run_rng);
  ASSERT_FALSE(report.timeline.empty());
  for (std::size_t i = 1; i < report.timeline.size(); ++i) {
    EXPECT_GE(report.timeline[i].first, report.timeline[i - 1].first);
  }
}


TEST_F(ControllerFixture, DeterministicGivenSeedAndTrace) {
  util::Rng trace_rng(12);
  const auto trace =
      sample_failure_trace(net_, config_.horizon_s, 18.0, trace_rng);
  config_.scheme = Scheme::kArrow;
  util::Rng r1(44), r2(44);
  const auto a = run_controller(net_, tms_, trace, config_, r1);
  const auto b = run_controller(net_, tms_, trace, config_, r2);
  EXPECT_DOUBLE_EQ(a.delivered_gbps_seconds, b.delivered_gbps_seconds);
  EXPECT_DOUBLE_EQ(a.offered_gbps_seconds, b.offered_gbps_seconds);
  EXPECT_EQ(a.cuts_handled, b.cuts_handled);
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.timeline[i].second, b.timeline[i].second);
  }
}

TEST_F(ControllerFixture, TransientLossIsPartOfTotalLoss) {
  util::Rng rng(13);
  const auto trace =
      sample_failure_trace(net_, config_.horizon_s, 24.0, rng);
  config_.scheme = Scheme::kArrow;
  util::Rng run_rng(14);
  const auto r = run_controller(net_, tms_, trace, config_, run_rng);
  EXPECT_LE(r.transient_loss_gbps_seconds, r.lost_gbps_seconds + 1e-6);
  EXPECT_NEAR(r.offered_gbps_seconds,
              r.delivered_gbps_seconds + r.lost_gbps_seconds,
              1e-6 * r.offered_gbps_seconds);
}

TEST(FailureTrace, RespectsHorizonAndRates) {
  const topo::Network net = topo::build_b4();
  util::Rng rng(11);
  const double horizon = 30.0 * 24.0 * 3600.0;  // a month
  const auto trace = sample_failure_trace(net, horizon, 16.0 / 30.0, rng);
  // ~16 cuts expected over the month (the §2.2 rate).
  EXPECT_GT(trace.size(), 5u);
  EXPECT_LT(trace.size(), 40u);
  for (const auto& ev : trace) {
    EXPECT_GE(ev.t_s, 0.0);
    EXPECT_LT(ev.t_s, horizon);
    EXPECT_GT(ev.repair_s, 0.0);
    EXPECT_GE(ev.fiber, 0);
    EXPECT_LT(ev.fiber, static_cast<int>(net.optical.fibers.size()));
  }
}

}  // namespace
}  // namespace arrow::ctrl
