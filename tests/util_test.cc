// Tests for the util substrate: RNG, statistics, table/CSV formatting.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace arrow::util {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(1);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, WeibullMeanMatchesTheory) {
  // mean = scale * Gamma(1 + 1/shape); for shape 0.8, Gamma(2.25) ~ 1.1330.
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.weibull(0.8, 0.02);
  EXPECT_NEAR(sum / n, 0.02 * std::tgamma(1.0 + 1.0 / 0.8), 0.001);
}

TEST(Rng, LognormalMedian) {
  Rng rng(17);
  std::vector<double> v;
  for (int i = 0; i < 20000; ++i) v.push_back(rng.lognormal(2.2, 0.85));
  // Median of lognormal = exp(mu) ~ 9.03 (the paper's 9-hour fiber MTTR).
  EXPECT_NEAR(percentile(v, 50.0), std::exp(2.2), 0.5);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(19);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 8000.0, 0.75, 0.03);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkIsIndependent) {
  Rng a(31);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Check, ThrowsOnViolation) {
  EXPECT_THROW(ARROW_CHECK(false, "boom"), std::logic_error);
  EXPECT_NO_THROW(ARROW_CHECK(true));
}

// Degenerate weight vectors used to fall through to the last index (or read
// garbage); they are caller bugs and must be rejected loudly.
TEST(Rng, WeightedIndexRejectsDegenerateWeights) {
  Rng rng(3);
  EXPECT_THROW(rng.weighted_index({}), std::logic_error);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0, 0.0}), std::logic_error);
  EXPECT_THROW(rng.weighted_index({0.5, -0.1}), std::logic_error);
  EXPECT_THROW(rng.weighted_index({0.5, std::nan("")}), std::logic_error);
}

TEST(Rng, WeightedIndexNeverPicksAZeroWeightEntry) {
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(rng.weighted_index({0.0, 1.0, 0.0}), 1u);
  }
}

TEST(Stats, SummaryBasics) {
  const auto s = summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 5);
  EXPECT_DOUBLE_EQ(s.mean, 3);
  EXPECT_DOUBLE_EQ(s.p50, 3);
}

TEST(Stats, SummaryEmpty) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0);
}

TEST(Stats, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(percentile({0, 10}, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile({0, 10}, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile({0, 10}, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile({5}, 73.0), 5.0);
}

// Out-of-range p (accumulated floating-point error in a sweep, or NaN) must
// clamp to the nearest order statistic — never extrapolate, never throw.
TEST(Stats, PercentileClampsOutOfRangeP) {
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3}, 150.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3}, 100.0 + 1e-12), 3.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3}, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3}, std::nan("")), 1.0);
  EXPECT_DOUBLE_EQ(percentile({4}, -10.0), 4.0);   // singleton
  EXPECT_DOUBLE_EQ(percentile({4}, 300.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);     // empty
  EXPECT_DOUBLE_EQ(percentile({}, -1.0), 0.0);
}

TEST(Stats, QuantileClampsOutOfRangeQ) {
  EmpiricalCdf cdf({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(cdf.quantile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.5), 4.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(std::nan("")), 1.0);
  EmpiricalCdf single({7.0});
  EXPECT_DOUBLE_EQ(single.quantile(2.0), 7.0);
  EXPECT_DOUBLE_EQ(single.quantile(-1.0), 7.0);
  EmpiricalCdf empty(std::vector<double>{});
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
}

TEST(Stats, EmpiricalCdfAtAndQuantile) {
  EmpiricalCdf cdf({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 4.0);
}

TEST(Stats, CdfCurveIsMonotone) {
  EmpiricalCdf cdf({5, 3, 9, 1, 7, 2, 8});
  const auto curve = cdf.curve(10);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].first, curve[i].first);
    EXPECT_LE(curve[i - 1].second, curve[i].second);
  }
}

TEST(Stats, TallyAround) {
  const auto t = tally_around({1, 2, 2, 3}, 2.0);
  EXPECT_DOUBLE_EQ(t.below, 0.25);
  EXPECT_DOUBLE_EQ(t.equal, 0.5);
  EXPECT_DOUBLE_EQ(t.above, 0.25);
}

TEST(Table, FormatsAlignedRows) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a   | bb |"), std::string::npos);
  EXPECT_NE(s.find("| 333 |    |"), std::string::npos);
}

TEST(Table, NumberHelpers) {
  EXPECT_EQ(Table::num(1.2345, 2), "1.23");
  EXPECT_EQ(Table::mult(2.04, 1), "2.0x");
  EXPECT_EQ(Table::pct(0.9999, 2), "99.99%");
}

TEST(Csv, WritesEscapedRows) {
  const std::string path = ::testing::TempDir() + "/arrow_csv_test.csv";
  {
    CsvWriter w(path, {"x", "note"});
    w.add_row({"1", "plain"});
    w.add_row({"2", "with,comma"});
    w.add_row({"3", "with\"quote"});
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string content = ss.str();
  EXPECT_NE(content.find("x,note"), std::string::npos);
  EXPECT_NE(content.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(content.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Csv, RejectsColumnMismatch) {
  const std::string path = ::testing::TempDir() + "/arrow_csv_test2.csv";
  CsvWriter w(path, {"only"});
  EXPECT_THROW(w.add_row({"a", "b"}), std::logic_error);
}

}  // namespace
}  // namespace arrow::util
