// Fault-injection suite (ctest label: resilience).
//
// The property under test is the controller's robustness contract: under a
// seeded storm of solver faults, dropped/delayed restoration plans,
// perturbed traffic matrices, unplanned cuts and concurrent double-cuts,
// run_controller never throws, attributes every degradation to a ladder
// rung, and keeps availability close to the fault-free baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "controller/controller.h"
#include "resilience/harness.h"
#include "solver/model.h"
#include "topo/builders.h"

namespace arrow::resilience {
namespace {

class ResilienceFixture : public ::testing::Test {
 protected:
  ResilienceFixture() : net_(topo::build_b4()) {
    util::Rng rng(7);
    traffic::TrafficParams tp;
    tp.num_matrices = 2;
    tms_ = traffic::generate_traffic(net_, tp, rng);
    config_.horizon_s = 2.0 * 3600.0;
    config_.te_interval_s = 600.0;
    config_.tunnels.tunnels_per_flow = 4;
    config_.arrow.tickets.num_tickets = 4;
    config_.scenarios.probability_cutoff = 0.002;
    config_.demand_scale = 0.5;
    config_.scheme = ctrl::Scheme::kArrow;
  }
  topo::Network net_;
  std::vector<traffic::TrafficMatrix> tms_;
  ctrl::ControllerConfig config_;
};

// --- to_string coverage (satellite) ----------------------------------------

TEST(ToString, LpStatusCoversEveryValue) {
  using solver::LpStatus;
  EXPECT_STREQ(to_string(LpStatus::kOptimal), "optimal");
  EXPECT_STREQ(to_string(LpStatus::kInfeasible), "infeasible");
  EXPECT_STREQ(to_string(LpStatus::kUnbounded), "unbounded");
  EXPECT_STREQ(to_string(LpStatus::kIterationLimit), "iteration-limit");
  EXPECT_STREQ(to_string(LpStatus::kNumericalError), "numerical-error");
  EXPECT_STREQ(to_string(LpStatus::kTimedOut), "timed-out");
}

TEST(ToString, SolveStatusCoversEveryValue) {
  using solver::SolveStatus;
  for (SolveStatus s :
       {SolveStatus::kOptimal, SolveStatus::kInfeasible,
        SolveStatus::kUnbounded, SolveStatus::kIterationLimit,
        SolveStatus::kNodeLimit, SolveStatus::kNumericalError,
        SolveStatus::kTimedOut}) {
    EXPECT_STRNE(to_string(s), "unknown");
    EXPECT_GT(std::string(to_string(s)).size(), 0u);
  }
}

TEST(ToString, RungAndLpFaultCoverEveryValue) {
  for (int i = 0; i < ctrl::kNumRungs; ++i) {
    EXPECT_STRNE(ctrl::to_string(static_cast<ctrl::Rung>(i)), "unknown");
  }
  for (int i = 0; i < kNumLpFaults; ++i) {
    EXPECT_STRNE(to_string(static_cast<LpFault>(i)), "unknown");
  }
}

// --- FaultInjector unit behavior -------------------------------------------

TEST(FaultInjector, DeterministicGivenSeed) {
  FaultConfig fc;
  fc.seed = 42;
  fc.lp_fault_rate = 0.5;
  FaultInjector a(fc), b(fc);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.next_lp_fault(), b.next_lp_fault());
  }
}

TEST(FaultInjector, RateZeroInjectsNothingRateOneEverything) {
  FaultConfig quiet;
  quiet.lp_fault_rate = 0.0;
  FaultInjector none(quiet);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(none.next_lp_fault(), LpFault::kNone);
  }
  FaultConfig storm;
  storm.lp_fault_rate = 1.0;
  FaultInjector all(storm);
  for (int i = 0; i < 100; ++i) {
    EXPECT_NE(all.next_lp_fault(), LpFault::kNone);
  }
}

TEST(FaultInjector, PerturbIsMeanPreservingAndOffByDefault) {
  traffic::TrafficMatrix tm;
  for (int i = 0; i < 400; ++i) {
    tm.demands.push_back({0, 1, 100.0});
  }
  FaultConfig off;
  FaultInjector id(off);
  EXPECT_DOUBLE_EQ(id.perturb(tm).total_gbps(), tm.total_gbps());

  FaultConfig jitter;
  jitter.tm_jitter_sigma = 0.3;
  FaultInjector j(jitter);
  const auto out = j.perturb(tm);
  EXPECT_NE(out.total_gbps(), tm.total_gbps());
  // Mean-one multiplicative jitter: total stays within a few percent over
  // 400 draws.
  EXPECT_NEAR(out.total_gbps() / tm.total_gbps(), 1.0, 0.1);
}

// A forced fault flows through the real solver entry point: the model is
// genuinely solved, then reported failed, and callers see the failure.
TEST(FaultInjector, ForcedStatusSurfacesThroughModelSolve) {
  FaultConfig fc;
  fc.lp_fault_rate = 1.0;
  fc.weight_numerical_error = 0.0;
  fc.weight_infeasible = 0.0;  // only kIterationLimit remains
  FaultInjector injector(fc);

  const auto build_and_solve = [] {
    solver::Model m;
    m.set_maximize();
    const auto x = m.add_var(0.0, 1.0, 1.0);
    (void)x;
    return m.solve();
  };
  EXPECT_TRUE(build_and_solve().optimal());
  {
    ScopedLpFaults guard(injector);
    const auto res = build_and_solve();
    EXPECT_FALSE(res.optimal());
    EXPECT_EQ(res.status, solver::SolveStatus::kIterationLimit);
  }
  EXPECT_TRUE(build_and_solve().optimal());  // guard gone, solver healthy
  EXPECT_EQ(injector.counts().solves_observed, 1);
  EXPECT_EQ(injector.counts().lp_faults, 1);
}

// --- the degradation ladder ------------------------------------------------

TEST_F(ResilienceFixture, AllSolveFaultsStillServeEveryPeriod) {
  // Every LP solve fails => the ladder must bottom out at ECMP (closed form)
  // without throwing, and every TE run must be attributed to a rung.
  FaultConfig fc;
  fc.seed = 3;
  fc.lp_fault_rate = 1.0;
  util::Rng rng(21);
  const auto run = run_with_faults(net_, tms_, {}, config_, fc, rng);
  const auto& r = run.report;
  EXPECT_EQ(r.te_runs, 2);
  ASSERT_EQ(r.rung_by_matrix.size(), 2u);
  ASSERT_EQ(r.solve_seconds_by_matrix.size(), 2u);
  int attributed = 0;
  for (int c : r.fallback_counts) attributed += c;
  EXPECT_EQ(attributed, r.te_runs);
  EXPECT_EQ(r.fallback_counts[static_cast<int>(ctrl::Rung::kPrimary)], 0);
  // With every solve failing, periods are all degraded.
  EXPECT_EQ(r.degraded_periods,
            static_cast<int>(std::ceil(config_.horizon_s /
                                       config_.te_interval_s)));
  EXPECT_TRUE(r.calibration_degraded);
  EXPECT_GT(r.offered_gbps_seconds, 0.0);
  EXPECT_GT(r.delivered_gbps_seconds, 0.0);
}

TEST_F(ResilienceFixture, FaultFreeRunsEntirelyOnPrimaryRung) {
  FaultConfig fc;  // all rates zero
  util::Rng rng(22);
  const auto run = run_with_faults(net_, tms_, {}, config_, fc, rng);
  const auto& r = run.report;
  EXPECT_EQ(r.fallback_counts[static_cast<int>(ctrl::Rung::kPrimary)],
            r.te_runs);
  EXPECT_EQ(r.degraded_periods, 0);
  EXPECT_EQ(r.deadline_overruns, 0);
  EXPECT_FALSE(r.calibration_degraded);
  EXPECT_EQ(run.counts.lp_faults, 0);
}

// --- unplanned cuts + emergency restoration --------------------------------

TEST_F(ResilienceFixture, UnplannedCutGetsEmergencyRestoration) {
  // Plans exist only for fiber A; we cut fiber B (same provisioned load
  // profile) so the exact lookup misses and the nearest-scenario transplant
  // has to serve.
  std::vector<std::pair<double, topo::FiberId>> loaded;
  for (const auto& f : net_.optical.fibers) {
    loaded.emplace_back(net_.provisioned_gbps(f.id), f.id);
  }
  std::sort(loaded.rbegin(), loaded.rend());
  ASSERT_GE(loaded.size(), 2u);
  const topo::FiberId planned = loaded[0].second;
  const topo::FiberId surprise = loaded[1].second;
  config_.explicit_scenarios = {{{planned}, 0.01}};

  std::vector<ctrl::FailureEvent> trace{{600.0, surprise, 3.0 * 3600.0}};
  util::Rng rng(23);
  const auto report = ctrl::run_controller(net_, tms_, trace, config_, rng);
  EXPECT_EQ(report.cuts_handled, 1);
  EXPECT_EQ(report.cuts_with_plan, 0);
  EXPECT_EQ(report.unplanned_cuts, 1);
  // Both fibers carry traffic on this topology, so the donor scenario
  // shares failed links only if the cuts overlap in IP links; either way
  // the run must complete and account the cut as unplanned.
  EXPECT_LE(report.emergency_restorations, 1);

  // With emergency restoration disabled the cut stays dark.
  config_.emergency_restoration = false;
  util::Rng rng2(23);
  const auto bare = ctrl::run_controller(net_, tms_, trace, config_, rng2);
  EXPECT_EQ(bare.emergency_restorations, 0);
  EXPECT_LE(bare.delivered_gbps_seconds,
            report.delivered_gbps_seconds + 1e-6);
}

// --- the acceptance sweep --------------------------------------------------

// ISSUE acceptance criteria: across seeded runs totalling >= 100 injected
// solver faults, >= 10 unplanned cuts and >= 3 concurrent double-cuts,
// run_controller never throws, every degradation maps to a rung, and
// availability under faults stays within 2% of the fault-free run.
TEST_F(ResilienceFixture, SeededFaultSweepMeetsAcceptanceCriteria) {
  int total_lp_faults = 0;
  int total_unplanned = 0;
  int total_double_cuts = 0;

  // A raised cutoff leaves the rarer fibers without precomputed scenarios
  // (genuinely unplanned cuts, same in the baseline), and a load light
  // enough that every ladder rung — including failure-aware FFC-1, which
  // reserves scenario headroom — admits the full matrix. The availability
  // criterion then measures restoration robustness, not the admission gap
  // between schemes.
  config_.scenarios.probability_cutoff = 0.004;
  config_.demand_scale = 0.15;

  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    // A fresh trace per seed, spiked with a concurrent double-cut. Repairs
    // are capped at 20 minutes: the drill needs many cuts in a 2-hour
    // horizon without the whole run spent under 3+ concurrent failures
    // (which no TE scheme in the ladder claims to survive unscathed).
    util::Rng trace_rng(100 + seed);
    auto trace = ctrl::sample_failure_trace(net_, config_.horizon_s,
                                            /*cuts_per_day=*/36.0, trace_rng);
    for (auto& ev : trace) ev.repair_s = std::min(ev.repair_s, 1200.0);
    DoubleCutParams dc;
    dc.pairs = 1;
    dc.gap_s = 120.0;
    dc.repair_s = 900.0;
    inject_double_cuts(trace, net_, config_.horizon_s, dc, trace_rng);

    FaultConfig fc;
    fc.seed = seed;
    fc.lp_fault_rate = 0.6;
    fc.plan_drop_rate = 0.1;
    fc.plan_delay_rate = 0.3;
    fc.plan_delay_s = 20.0;

    util::Rng faulted_rng(200 + seed);
    FaultedRun run;
    ASSERT_NO_THROW(run = run_with_faults(net_, tms_, trace, config_, fc,
                                          faulted_rng))
        << "seed " << seed;
    const auto& r = run.report;

    // Every TE solve is attributed to exactly one ladder rung.
    int attributed = 0;
    for (int c : r.fallback_counts) attributed += c;
    EXPECT_EQ(attributed, r.te_runs) << "seed " << seed;
    EXPECT_EQ(static_cast<int>(r.rung_by_matrix.size()), r.te_runs);

    // Fault-free baseline on the same trace (no TM jitter configured, so
    // offered load matches exactly).
    FaultConfig clean;
    clean.seed = seed;
    util::Rng clean_rng(200 + seed);
    const auto base = run_with_faults(net_, tms_, trace, config_, clean,
                                      clean_rng);
    EXPECT_NEAR(r.availability(), base.report.availability(), 0.02)
        << "seed " << seed;

    total_lp_faults += run.counts.lp_faults;
    total_unplanned += r.unplanned_cuts;
    total_double_cuts += r.overlapping_cuts;
  }

  EXPECT_GE(total_lp_faults, 100);
  EXPECT_GE(total_unplanned, 10);
  EXPECT_GE(total_double_cuts, 3);
}

// --- determinism under faults (satellite) ----------------------------------

TEST_F(ResilienceFixture, FaultedRunIsBitIdenticalGivenSeed) {
  util::Rng trace_rng(31);
  auto trace = ctrl::sample_failure_trace(net_, config_.horizon_s, 24.0,
                                          trace_rng);
  DoubleCutParams dc;
  inject_double_cuts(trace, net_, config_.horizon_s, dc, trace_rng);

  FaultConfig fc;
  fc.seed = 9;
  fc.lp_fault_rate = 0.5;
  fc.plan_drop_rate = 0.25;
  fc.plan_delay_rate = 0.25;
  fc.tm_jitter_sigma = 0.1;

  util::Rng r1(77), r2(77);
  const auto a = run_with_faults(net_, tms_, trace, config_, fc, r1);
  const auto b = run_with_faults(net_, tms_, trace, config_, fc, r2);

  EXPECT_EQ(a.counts.solves_observed, b.counts.solves_observed);
  EXPECT_EQ(a.counts.lp_faults, b.counts.lp_faults);
  EXPECT_EQ(a.report.rung_by_matrix, b.report.rung_by_matrix);
  EXPECT_EQ(a.report.fallback_counts, b.report.fallback_counts);
  EXPECT_EQ(a.report.unplanned_cuts, b.report.unplanned_cuts);
  EXPECT_EQ(a.report.emergency_restorations, b.report.emergency_restorations);
  EXPECT_EQ(a.report.plans_dropped, b.report.plans_dropped);
  EXPECT_EQ(a.report.plans_delayed, b.report.plans_delayed);
  EXPECT_DOUBLE_EQ(a.report.offered_gbps_seconds,
                   b.report.offered_gbps_seconds);
  EXPECT_DOUBLE_EQ(a.report.delivered_gbps_seconds,
                   b.report.delivered_gbps_seconds);
  ASSERT_EQ(a.report.timeline.size(), b.report.timeline.size());
  for (std::size_t i = 0; i < a.report.timeline.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.report.timeline[i].first, b.report.timeline[i].first);
    EXPECT_DOUBLE_EQ(a.report.timeline[i].second,
                     b.report.timeline[i].second);
  }
}

// --- double-cut injection --------------------------------------------------

TEST(DoubleCuts, InjectedPairsAreConcurrentAndDistinct) {
  const topo::Network net = topo::build_b4();
  std::vector<ctrl::FailureEvent> trace;
  DoubleCutParams dc;
  dc.pairs = 5;
  dc.gap_s = 60.0;
  util::Rng rng(55);
  inject_double_cuts(trace, net, 24.0 * 3600.0, dc, rng);
  ASSERT_EQ(trace.size(), 10u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].t_s, trace[i - 1].t_s);  // sorted
  }
  // Each pair overlaps: the partner lands gap_s later, repairs are hours.
  for (const auto& ev : trace) {
    EXPECT_GT(ev.repair_s, dc.gap_s);
    EXPECT_GE(ev.fiber, 0);
    EXPECT_LT(ev.fiber, static_cast<int>(net.optical.fibers.size()));
  }
}

// --- topo::validate diagnostics pass (satellite) ---------------------------

TEST(TopoValidate, CleanNetworkHasNoIssues) {
  const topo::Network net = topo::build_b4();
  EXPECT_TRUE(topo::validate(net).empty());
}

TEST(TopoValidate, CollectsAllViolationsWithoutThrowing) {
  topo::Network net;
  net.name = "broken";
  net.num_sites = 2;
  net.roadm_of_site = {0, 1};
  net.optical.num_roadms = 2;
  topo::Fiber f;
  f.id = 0;
  f.a = 0;
  f.b = 5;  // endpoint out of range
  f.length_km = -3.0;  // negative length
  f.slots = 0;  // non-positive spectrum
  net.optical.fibers.push_back(f);
  topo::Fiber dup = f;
  net.optical.fibers.push_back(dup);  // duplicate id

  topo::IpLink link;
  link.id = 0;
  link.src = 0;
  link.dst = 0;  // self-loop
  topo::Wavelength w;
  w.slot = -1;         // negative slot
  w.gbps = -100.0;     // negative capacity
  w.fiber_path = {7};  // dangling fiber reference
  link.waves.push_back(w);
  net.ip_links.push_back(link);

  const auto issues = topo::validate(net);
  EXPECT_GE(issues.size(), 6u);
  const auto contains = [&issues](const std::string& needle) {
    for (const auto& s : issues) {
      if (s.find(needle) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains("duplicate fiber"));
  EXPECT_TRUE(contains("endpoint out of range"));
  EXPECT_TRUE(contains("negative length"));
  EXPECT_TRUE(contains("non-positive spectrum"));
  EXPECT_TRUE(contains("self-loop"));
  EXPECT_TRUE(contains("dangling fiber reference"));
  EXPECT_TRUE(contains("non-positive wavelength capacity"));
}

}  // namespace
}  // namespace arrow::resilience
