// Tests for the persistent warm-start BasisStore: key round-trips, the
// seed/absorb protocol against ScopedWarmStartCache, and the end-to-end
// effect — a second solve of the same-shaped LP warm-starts from the basis a
// previous scope left behind.
#include <gtest/gtest.h>

#include "controller/controller.h"
#include "solver/basis_store.h"
#include "solver/lp.h"
#include "solver/model.h"
#include "topo/builders.h"

namespace arrow::solver {
namespace {

Basis make_basis(int cols, BasisStatus fill) {
  Basis b;
  b.status.assign(static_cast<std::size_t>(cols), fill);
  return b;
}

TEST(BasisStore, StoreLoadRoundTrip) {
  BasisStore store;
  const BasisStore::Key key{11, 22, 3, 7};
  store.store(key, make_basis(7, BasisStatus::kBasic));
  EXPECT_EQ(store.size(), 1u);

  Basis out;
  ASSERT_TRUE(store.load(key, &out));
  EXPECT_EQ(out.status.size(), 7u);
  EXPECT_EQ(out.num_basic(), 7);

  // Any differing key component misses.
  EXPECT_FALSE(store.load({12, 22, 3, 7}, &out));
  EXPECT_FALSE(store.load({11, 23, 3, 7}, &out));
  EXPECT_FALSE(store.load({11, 22, 4, 7}, &out));
  EXPECT_FALSE(store.load({11, 22, 3, 8}, &out));

  // Re-storing the same key overwrites, not duplicates.
  store.store(key, make_basis(7, BasisStatus::kNonbasicLower));
  EXPECT_EQ(store.size(), 1u);
  ASSERT_TRUE(store.load(key, &out));
  EXPECT_EQ(out.num_basic(), 0);

  store.clear();
  EXPECT_EQ(store.size(), 0u);
}

TEST(BasisStore, SeedPreloadsOnlyMatchingEntriesAndCountsNoStores) {
  BasisStore store;
  store.store({7, 9, 10, 20}, make_basis(20, BasisStatus::kBasic));
  store.store({7, 9, 30, 40}, make_basis(40, BasisStatus::kBasic));
  store.store({7, 8, 10, 20}, make_basis(20, BasisStatus::kBasic));  // other set
  store.store({6, 9, 10, 20}, make_basis(20, BasisStatus::kBasic));  // other topo

  ScopedWarmStartCache cache;
  EXPECT_EQ(store.seed(7, 9, cache), 2);
  EXPECT_EQ(cache.entries().size(), 2u);
  EXPECT_EQ(cache.entries().count({10, 20}), 1u);
  EXPECT_EQ(cache.entries().count({30, 40}), 1u);
  // Preloads must not pollute this run's own store counter.
  EXPECT_EQ(cache.stores(), 0);
  EXPECT_EQ(cache.hits(), 0);
}

TEST(BasisStore, AbsorbPersistsCacheEntries) {
  BasisStore store;
  {
    ScopedWarmStartCache cache;
    cache.store(5, 12, make_basis(12, BasisStatus::kBasic));
    cache.store(8, 16, make_basis(16, BasisStatus::kNonbasicUpper));
    EXPECT_EQ(store.absorb(3, 4, cache), 2);
  }
  EXPECT_EQ(store.size(), 2u);
  Basis out;
  ASSERT_TRUE(store.load({3, 4, 5, 12}, &out));
  EXPECT_EQ(out.status.size(), 12u);
  ASSERT_TRUE(store.load({3, 4, 8, 16}, &out));
  EXPECT_EQ(out.status.size(), 16u);
}

TEST(BasisStore, GlobalIsASingleton) {
  EXPECT_EQ(&BasisStore::global(), &BasisStore::global());
}

// A small LP solved in one scope leaves its basis in the store; the next
// scope's identically-shaped solve warm-starts from it and lands on the same
// optimum.
TEST(BasisStore, SecondScopeWarmStartsFromFirstScopesBasis) {
  BasisStore store;
  const auto solve_once = [] {
    Model m;
    m.set_maximize();
    const auto x = m.add_var(0.0, 10.0, 1.0, "x");
    const auto y = m.add_var(0.0, 10.0, 2.0, "y");
    LinExpr sum;
    sum.add_term(x, 1.0);
    sum.add_term(y, 1.0);
    m.add_constr(sum, Sense::kLe, 12.0);
    const auto res = m.solve();
    EXPECT_TRUE(res.optimal());
    return res.objective;
  };

  double cold_obj = 0.0;
  {
    ScopedWarmStartCache cache;
    EXPECT_EQ(store.seed(1, 2, cache), 0);  // store starts empty
    cold_obj = solve_once();
    EXPECT_EQ(cache.hits(), 0);
    EXPECT_GT(cache.stores(), 0);
    EXPECT_GT(store.absorb(1, 2, cache), 0);
  }
  {
    ScopedWarmStartCache cache;
    EXPECT_GT(store.seed(1, 2, cache), 0);
    const double warm_obj = solve_once();
    EXPECT_EQ(cache.hits(), 1);  // the solve found the preloaded basis
    EXPECT_DOUBLE_EQ(warm_obj, cold_obj);
  }
}

// Controller opt-in plumbing: a run with config.basis_store set populates
// the store, and a second run over the same network still solves every
// matrix on the primary rung while reusing the persisted bases.
TEST(BasisStore, ControllerRunsPopulateAndReuseTheStore) {
  const topo::Network net = topo::build_b4();
  util::Rng trng(7);
  traffic::TrafficParams tp;
  tp.num_matrices = 1;
  const auto tms = traffic::generate_traffic(net, tp, trng);

  ctrl::ControllerConfig config;
  config.scheme = ctrl::Scheme::kFfc1;
  config.horizon_s = 1800.0;
  config.te_interval_s = 600.0;
  config.tunnels.tunnels_per_flow = 4;
  config.scenarios.probability_cutoff = 0.002;
  config.demand_scale = 0.3;

  BasisStore store;
  config.basis_store = &store;
  util::Rng r1(5);
  const auto first = ctrl::run_controller(net, tms, {}, config, r1);
  EXPECT_EQ(first.fallback_counts[0], first.te_runs);
  EXPECT_GT(store.size(), 0u);

  const std::size_t after_first = store.size();
  util::Rng r2(5);
  const auto second = ctrl::run_controller(net, tms, {}, config, r2);
  EXPECT_EQ(second.fallback_counts[0], second.te_runs);
  // Same network + scenario set: the second run re-keys onto the same
  // entries instead of growing the store.
  EXPECT_EQ(store.size(), after_first);
  // Warm starts must not change what the controller delivers.
  EXPECT_DOUBLE_EQ(second.offered_gbps_seconds, first.offered_gbps_seconds);
  EXPECT_NEAR(second.availability(), first.availability(), 1e-9);
}

}  // namespace
}  // namespace arrow::solver
