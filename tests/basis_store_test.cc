// Tests for the persistent warm-start BasisStore: key round-trips, the
// seed/absorb protocol against ScopedWarmStartCache, and the end-to-end
// effect — a second solve of the same-shaped LP warm-starts from the basis a
// previous scope left behind.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "controller/controller.h"
#include "solver/basis_store.h"
#include "solver/lp.h"
#include "solver/model.h"
#include "topo/builders.h"
#include "util/hash.h"

namespace arrow::solver {
namespace {

Basis make_basis(int cols, BasisStatus fill) {
  Basis b;
  b.status.assign(static_cast<std::size_t>(cols), fill);
  return b;
}

TEST(BasisStore, StoreLoadRoundTrip) {
  BasisStore store;
  const BasisStore::Key key{11, 22, 3, 7};
  store.store(key, make_basis(7, BasisStatus::kBasic));
  EXPECT_EQ(store.size(), 1u);

  Basis out;
  ASSERT_TRUE(store.load(key, &out));
  EXPECT_EQ(out.status.size(), 7u);
  EXPECT_EQ(out.num_basic(), 7);

  // Any differing key component misses.
  EXPECT_FALSE(store.load({12, 22, 3, 7}, &out));
  EXPECT_FALSE(store.load({11, 23, 3, 7}, &out));
  EXPECT_FALSE(store.load({11, 22, 4, 7}, &out));
  EXPECT_FALSE(store.load({11, 22, 3, 8}, &out));

  // Re-storing the same key overwrites, not duplicates.
  store.store(key, make_basis(7, BasisStatus::kNonbasicLower));
  EXPECT_EQ(store.size(), 1u);
  ASSERT_TRUE(store.load(key, &out));
  EXPECT_EQ(out.num_basic(), 0);

  store.clear();
  EXPECT_EQ(store.size(), 0u);
}

TEST(BasisStore, SeedPreloadsOnlyMatchingEntriesAndCountsNoStores) {
  BasisStore store;
  store.store({7, 9, 10, 20}, make_basis(20, BasisStatus::kBasic));
  store.store({7, 9, 30, 40}, make_basis(40, BasisStatus::kBasic));
  store.store({7, 8, 10, 20}, make_basis(20, BasisStatus::kBasic));  // other set
  store.store({6, 9, 10, 20}, make_basis(20, BasisStatus::kBasic));  // other topo

  ScopedWarmStartCache cache;
  EXPECT_EQ(store.seed(7, 9, cache), 2);
  EXPECT_EQ(cache.entries().size(), 2u);
  EXPECT_EQ(cache.entries().count({10, 20}), 1u);
  EXPECT_EQ(cache.entries().count({30, 40}), 1u);
  // Preloads must not pollute this run's own store counter.
  EXPECT_EQ(cache.stores(), 0);
  EXPECT_EQ(cache.hits(), 0);
}

TEST(BasisStore, AbsorbPersistsCacheEntries) {
  BasisStore store;
  {
    ScopedWarmStartCache cache;
    cache.store(5, 12, make_basis(12, BasisStatus::kBasic));
    cache.store(8, 16, make_basis(16, BasisStatus::kNonbasicUpper));
    EXPECT_EQ(store.absorb(3, 4, cache), 2);
  }
  EXPECT_EQ(store.size(), 2u);
  Basis out;
  ASSERT_TRUE(store.load({3, 4, 5, 12}, &out));
  EXPECT_EQ(out.status.size(), 12u);
  ASSERT_TRUE(store.load({3, 4, 8, 16}, &out));
  EXPECT_EQ(out.status.size(), 16u);
}

TEST(BasisStore, GlobalIsASingleton) {
  EXPECT_EQ(&BasisStore::global(), &BasisStore::global());
}

// A small LP solved in one scope leaves its basis in the store; the next
// scope's identically-shaped solve warm-starts from it and lands on the same
// optimum.
TEST(BasisStore, SecondScopeWarmStartsFromFirstScopesBasis) {
  BasisStore store;
  const auto solve_once = [] {
    Model m;
    m.set_maximize();
    const auto x = m.add_var(0.0, 10.0, 1.0, "x");
    const auto y = m.add_var(0.0, 10.0, 2.0, "y");
    LinExpr sum;
    sum.add_term(x, 1.0);
    sum.add_term(y, 1.0);
    m.add_constr(sum, Sense::kLe, 12.0);
    const auto res = m.solve();
    EXPECT_TRUE(res.optimal());
    return res.objective;
  };

  double cold_obj = 0.0;
  {
    ScopedWarmStartCache cache;
    EXPECT_EQ(store.seed(1, 2, cache), 0);  // store starts empty
    cold_obj = solve_once();
    EXPECT_EQ(cache.hits(), 0);
    EXPECT_GT(cache.stores(), 0);
    EXPECT_GT(store.absorb(1, 2, cache), 0);
  }
  {
    ScopedWarmStartCache cache;
    EXPECT_GT(store.seed(1, 2, cache), 0);
    const double warm_obj = solve_once();
    EXPECT_EQ(cache.hits(), 1);  // the solve found the preloaded basis
    EXPECT_DOUBLE_EQ(warm_obj, cold_obj);
  }
}

// Controller opt-in plumbing: a run with config.basis_store set populates
// the store, and a second run over the same network still solves every
// matrix on the primary rung while reusing the persisted bases.
TEST(BasisStore, ControllerRunsPopulateAndReuseTheStore) {
  const topo::Network net = topo::build_b4();
  util::Rng trng(7);
  traffic::TrafficParams tp;
  tp.num_matrices = 1;
  const auto tms = traffic::generate_traffic(net, tp, trng);

  ctrl::ControllerConfig config;
  config.scheme = ctrl::Scheme::kFfc1;
  config.horizon_s = 1800.0;
  config.te_interval_s = 600.0;
  config.tunnels.tunnels_per_flow = 4;
  config.scenarios.probability_cutoff = 0.002;
  config.demand_scale = 0.3;

  BasisStore store;
  config.basis_store = &store;
  util::Rng r1(5);
  const auto first = ctrl::run_controller(net, tms, {}, config, r1);
  EXPECT_EQ(first.fallback_counts[0], first.te_runs);
  EXPECT_GT(store.size(), 0u);

  const std::size_t after_first = store.size();
  util::Rng r2(5);
  const auto second = ctrl::run_controller(net, tms, {}, config, r2);
  EXPECT_EQ(second.fallback_counts[0], second.te_runs);
  // Same network + scenario set: the second run re-keys onto the same
  // entries instead of growing the store.
  EXPECT_EQ(store.size(), after_first);
  // Warm starts must not change what the controller delivers.
  EXPECT_DOUBLE_EQ(second.offered_gbps_seconds, first.offered_gbps_seconds);
  EXPECT_NEAR(second.availability(), first.availability(), 1e-9);
}

// --- on-disk persistence ----------------------------------------------------
// save()/load() must round-trip exactly, and *every* malformed file —
// truncated at any byte, any single byte flipped, a future version, garbage
// status codes — must be rejected with the store untouched: a bad file
// degrades to a cold start, never to an error or a polluted store.

std::string scratch_file(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void write_all(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out) << path;
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  ASSERT_TRUE(out.good());
}

// Recomputes the trailing FNV-1a checksum after a deliberate patch, so the
// tests below can distinguish "rejected by checksum" from "rejected by the
// structural validation a valid-checksum file still has to pass".
void refresh_checksum(std::string& buf) {
  ASSERT_GE(buf.size(), 8u);
  const std::uint64_t h =
      util::Fnv1a().bytes(buf.data(), buf.size() - 8).value();
  for (int i = 0; i < 8; ++i) {
    buf[buf.size() - 8 + static_cast<std::size_t>(i)] =
        static_cast<char>((h >> (8 * i)) & 0xff);
  }
}

// (BasisStore owns a mutex, so the fixture fills a caller-owned store.)
void fill_disk_fixture(BasisStore& store) {
  store.store({11, 22, 3, 7}, make_basis(7, BasisStatus::kBasic));
  store.store({11, 22, 5, 9}, make_basis(9, BasisStatus::kNonbasicUpper));
  store.store({33, 44, 2, 4}, make_basis(4, BasisStatus::kNonbasicFree));
}

bool save_disk_fixture(const std::string& path) {
  BasisStore store;
  fill_disk_fixture(store);
  return store.save(path);
}

void expect_fixture_contents(const BasisStore& store) {
  EXPECT_EQ(store.size(), 3u);
  Basis out;
  ASSERT_TRUE(store.load({11, 22, 3, 7}, &out));
  EXPECT_EQ(out.status, make_basis(7, BasisStatus::kBasic).status);
  ASSERT_TRUE(store.load({11, 22, 5, 9}, &out));
  EXPECT_EQ(out.status, make_basis(9, BasisStatus::kNonbasicUpper).status);
  ASSERT_TRUE(store.load({33, 44, 2, 4}, &out));
  EXPECT_EQ(out.status, make_basis(4, BasisStatus::kNonbasicFree).status);
}

TEST(BasisStoreDisk, SaveLoadRoundTrip) {
  const std::string path = scratch_file("basis_roundtrip.bin");
  ASSERT_TRUE(save_disk_fixture(path));

  BasisStore loaded;
  ASSERT_TRUE(loaded.load(path));
  expect_fixture_contents(loaded);

  // Loading merges: file entries overwrite same-key entries, others survive.
  BasisStore merged;
  merged.store({11, 22, 3, 7}, make_basis(7, BasisStatus::kNonbasicLower));
  merged.store({99, 99, 1, 2}, make_basis(2, BasisStatus::kBasic));
  ASSERT_TRUE(merged.load(path));
  EXPECT_EQ(merged.size(), 4u);
  Basis out;
  ASSERT_TRUE(merged.load({11, 22, 3, 7}, &out));
  EXPECT_EQ(out.status, make_basis(7, BasisStatus::kBasic).status);
  ASSERT_TRUE(merged.load({99, 99, 1, 2}, &out));
}

TEST(BasisStoreDisk, EmptyStoreRoundTrips) {
  const std::string path = scratch_file("basis_empty.bin");
  ASSERT_TRUE(BasisStore().save(path));
  BasisStore loaded;
  EXPECT_TRUE(loaded.load(path));
  EXPECT_EQ(loaded.size(), 0u);
}

TEST(BasisStoreDisk, SavePrunesLeastRecentlyUsedBeyondTheCap) {
  const std::string path = scratch_file("basis_lru.bin");
  BasisStore store;
  EXPECT_EQ(store.max_disk_entries(), 512u);  // documented default
  store.set_max_disk_entries(3);
  for (std::uint64_t i = 0; i < 5; ++i) {
    store.store({i, 0, 2, 4}, make_basis(4, BasisStatus::kBasic));
  }
  // Freshen entries 0 and 1: the const read path must count as a use.
  Basis out;
  ASSERT_TRUE(store.load({0, 0, 2, 4}, &out));
  ASSERT_TRUE(store.load({1, 0, 2, 4}, &out));
  // Most recent now: 1, 0, 4 (stored last). 2 and 3 fall off the file.
  ASSERT_TRUE(store.save(path));
  EXPECT_EQ(store.evictions(), 2);
  EXPECT_EQ(store.size(), 5u);  // the in-memory store is never shrunk

  BasisStore loaded;
  ASSERT_TRUE(loaded.load(path));
  EXPECT_EQ(loaded.size(), 3u);
  EXPECT_TRUE(loaded.load({0, 0, 2, 4}, &out));
  EXPECT_TRUE(loaded.load({1, 0, 2, 4}, &out));
  EXPECT_TRUE(loaded.load({4, 0, 2, 4}, &out));
  EXPECT_FALSE(loaded.load({2, 0, 2, 4}, &out));
  EXPECT_FALSE(loaded.load({3, 0, 2, 4}, &out));
}

TEST(BasisStoreDisk, ZeroCapDisablesPruning) {
  const std::string path = scratch_file("basis_nocap.bin");
  BasisStore store;
  store.set_max_disk_entries(0);
  for (std::uint64_t i = 0; i < 8; ++i) {
    store.store({i, 0, 2, 4}, make_basis(4, BasisStatus::kBasic));
  }
  ASSERT_TRUE(store.save(path));
  EXPECT_EQ(store.evictions(), 0);
  BasisStore loaded;
  ASSERT_TRUE(loaded.load(path));
  EXPECT_EQ(loaded.size(), 8u);
}

TEST(BasisStoreDisk, RepeatedCappedSavesAccumulateEvictions) {
  const std::string path = scratch_file("basis_lru_repeat.bin");
  BasisStore store;
  store.set_max_disk_entries(1);
  store.store({1, 0, 2, 4}, make_basis(4, BasisStatus::kBasic));
  store.store({2, 0, 2, 4}, make_basis(4, BasisStatus::kBasic));
  ASSERT_TRUE(store.save(path));
  EXPECT_EQ(store.evictions(), 1);
  ASSERT_TRUE(store.save(path));
  EXPECT_EQ(store.evictions(), 2);

  // The capped file still round-trips (format is unchanged by pruning).
  BasisStore loaded;
  ASSERT_TRUE(loaded.load(path));
  EXPECT_EQ(loaded.size(), 1u);
  Basis out;
  EXPECT_TRUE(loaded.load({2, 0, 2, 4}, &out));  // the most recent store
}

TEST(BasisStoreDisk, MissingFileAndMissingDirectoryAreCleanFailures) {
  BasisStore store;
  store.store({1, 2, 3, 4}, make_basis(4, BasisStatus::kBasic));
  EXPECT_FALSE(store.load(scratch_file("no_such_basis_file.bin")));
  EXPECT_EQ(store.size(), 1u);  // untouched
  EXPECT_FALSE(
      store.save(scratch_file("no_such_dir/deeper/arrow_basis.bin")));
}

TEST(BasisStoreDisk, FileInAppendsTheStoreFilename) {
  EXPECT_EQ(BasisStore::file_in("/some/dir"), "/some/dir/arrow_basis.bin");
}

TEST(BasisStoreDisk, EveryTruncationIsRejectedWithTheStoreUntouched) {
  const std::string path = scratch_file("basis_trunc.bin");
  ASSERT_TRUE(save_disk_fixture(path));
  const std::string full = read_all(path);
  ASSERT_GT(full.size(), 24u);

  const std::string trunc_path = scratch_file("basis_trunc_cut.bin");
  for (std::size_t len = 0; len < full.size(); ++len) {
    write_all(trunc_path, full.substr(0, len));
    BasisStore store;
    store.store({1, 2, 3, 4}, make_basis(4, BasisStatus::kBasic));
    EXPECT_FALSE(store.load(trunc_path)) << "len=" << len;
    EXPECT_EQ(store.size(), 1u) << "len=" << len;
  }
}

TEST(BasisStoreDisk, EverySingleByteFlipIsRejected) {
  const std::string path = scratch_file("basis_flip.bin");
  ASSERT_TRUE(save_disk_fixture(path));
  const std::string full = read_all(path);

  const std::string flip_path = scratch_file("basis_flip_cut.bin");
  for (std::size_t i = 0; i < full.size(); ++i) {
    std::string bad = full;
    bad[i] = static_cast<char>(bad[i] ^ 0x5a);
    write_all(flip_path, bad);
    BasisStore store;
    EXPECT_FALSE(store.load(flip_path)) << "byte=" << i;
    EXPECT_EQ(store.size(), 0u) << "byte=" << i;
  }
}

// Same-shaped entries under different tags (the decomposition's per-scenario
// sub-LP bases) are distinct keys end-to-end: store/load, seed/absorb, and
// the v2 disk format all carry the tag.
TEST(BasisStoreDisk, TagDistinguishesSameShapedEntries) {
  BasisStore store;
  store.store({3, 4, 5, 12, 0}, make_basis(12, BasisStatus::kBasic));
  store.store({3, 4, 5, 12, 9}, make_basis(12, BasisStatus::kNonbasicUpper));
  EXPECT_EQ(store.size(), 2u);
  Basis out;
  ASSERT_TRUE(store.load({3, 4, 5, 12, 9}, &out));
  EXPECT_EQ(out.num_basic(), 0);
  ASSERT_TRUE(store.load({3, 4, 5, 12, 0}, &out));
  EXPECT_EQ(out.num_basic(), 12);
  EXPECT_FALSE(store.load({3, 4, 5, 12, 8}, &out));

  // seed copies the tag into the cache key; absorb copies it back out.
  ScopedWarmStartCache cache;
  EXPECT_EQ(store.seed(3, 4, cache), 2);
  EXPECT_EQ(cache.entries().count({5, 12, 0}), 1u);
  EXPECT_EQ(cache.entries().count({5, 12, 9}), 1u);
  BasisStore other;
  EXPECT_EQ(other.absorb(3, 4, cache), 2);
  ASSERT_TRUE(other.load({3, 4, 5, 12, 9}, &out));
  EXPECT_EQ(out.status.size(), 12u);

  // Disk round-trip (v2 layout carries the tag per entry).
  const std::string path = scratch_file("basis_tagged.bin");
  ASSERT_TRUE(store.save(path));
  BasisStore loaded;
  ASSERT_TRUE(loaded.load(path));
  EXPECT_EQ(loaded.size(), 2u);
  ASSERT_TRUE(loaded.load({3, 4, 5, 12, 9}, &out));
  EXPECT_EQ(out.status, make_basis(12, BasisStatus::kNonbasicUpper).status);
}

TEST(BasisStoreDisk, FutureVersionIsRejectedEvenWithAValidChecksum) {
  const std::string path = scratch_file("basis_version.bin");
  ASSERT_TRUE(save_disk_fixture(path));
  std::string buf = read_all(path);
  buf[4] = 3;  // version field (little-endian u32 at offset 4)
  refresh_checksum(buf);
  write_all(path, buf);
  BasisStore store;
  EXPECT_FALSE(store.load(path));
  EXPECT_EQ(store.size(), 0u);
}

TEST(BasisStoreDisk, GarbageStatusByteIsRejectedEvenWithAValidChecksum) {
  const std::string path = scratch_file("basis_status.bin");
  ASSERT_TRUE(save_disk_fixture(path));
  std::string buf = read_all(path);
  // First status byte: magic(4) + version(4) + count(8) + key(32) + n(8).
  const std::size_t status_at = 4 + 4 + 8 + 32 + 8;
  ASSERT_LT(status_at, buf.size() - 8);
  buf[status_at] = 7;  // > kNonbasicFree
  refresh_checksum(buf);
  write_all(path, buf);
  BasisStore store;
  EXPECT_FALSE(store.load(path));
  EXPECT_EQ(store.size(), 0u);
}

TEST(BasisStoreDisk, LyingEntryCountIsRejectedEvenWithAValidChecksum) {
  const std::string path = scratch_file("basis_count.bin");
  ASSERT_TRUE(save_disk_fixture(path));
  std::string buf = read_all(path);
  for (int delta : {-1, 1}) {
    std::string bad = buf;
    bad[8] = static_cast<char>(bad[8] + delta);  // count u64 at offset 8
    refresh_checksum(bad);
    write_all(path, bad);
    BasisStore store;
    EXPECT_FALSE(store.load(path)) << "delta=" << delta;
    EXPECT_EQ(store.size(), 0u) << "delta=" << delta;
  }
}

// End-to-end: a controller run given only a basis directory (no in-process
// store) persists its bases; a second run — sharing no process state —
// warm-starts off the file alone with fewer simplex pivots and the same
// delivered traffic; corrupting the file degrades the third run to an exact
// replay of the cold one.
TEST(BasisStoreDisk, ControllerWarmStartsAcrossRunsFromTheDiskFileAlone) {
  const topo::Network net = topo::build_b4();
  util::Rng trng(7);
  traffic::TrafficParams tp;
  tp.num_matrices = 1;
  const auto tms = traffic::generate_traffic(net, tp, trng);

  ctrl::ControllerConfig config;
  config.scheme = ctrl::Scheme::kFfc1;
  config.horizon_s = 1800.0;
  config.te_interval_s = 600.0;
  config.tunnels.tunnels_per_flow = 4;
  config.scenarios.probability_cutoff = 0.002;
  config.demand_scale = 0.3;

  const std::string dir = ::testing::TempDir() + "basis_dir_ctrl";
  std::filesystem::create_directories(dir);
  const std::string file = BasisStore::file_in(dir);
  std::filesystem::remove(file);  // stale state from a previous test run
  config.basis_dir = dir;

  const auto run_counting = [&](long long* iterations) {
    long long total = 0;
    ScopedSolveObserver counter([&total](const Lp&, LpSolution& sol) {
      total += sol.iterations;
    });
    util::Rng rng(5);
    const auto report = ctrl::run_controller(net, tms, {}, config, rng);
    *iterations = total;
    return report;
  };

  long long cold_iters = 0;
  const auto cold = run_counting(&cold_iters);
  EXPECT_EQ(cold.fallback_counts[0], cold.te_runs);
  EXPECT_GT(cold_iters, 0);
  ASSERT_TRUE(std::filesystem::exists(file));

  long long warm_iters = 0;
  const auto warm = run_counting(&warm_iters);
  EXPECT_EQ(warm.fallback_counts[0], warm.te_runs);
  EXPECT_LT(warm_iters, cold_iters);
  EXPECT_DOUBLE_EQ(warm.offered_gbps_seconds, cold.offered_gbps_seconds);
  EXPECT_NEAR(warm.availability(), cold.availability(), 1e-9);

  // Flip a byte in the middle: the third run must reject the file and replay
  // the cold run bit-for-bit — same pivots, same delivery.
  std::string buf = read_all(file);
  buf[buf.size() / 2] = static_cast<char>(buf[buf.size() / 2] ^ 0x5a);
  write_all(file, buf);
  long long corrupt_iters = 0;
  const auto corrupt = run_counting(&corrupt_iters);
  EXPECT_EQ(corrupt.fallback_counts[0], corrupt.te_runs);
  EXPECT_EQ(corrupt_iters, cold_iters);
  EXPECT_DOUBLE_EQ(corrupt.availability(), cold.availability());

  // The corrupted file was overwritten by that run's save; a fourth run may
  // warm-start again.
  BasisStore reloaded;
  EXPECT_TRUE(reloaded.load(file));
  EXPECT_GT(reloaded.size(), 0u);
}

// The ARROW_BASIS_DIR environment variable is the no-code-change path to the
// same behaviour (config.basis_dir overrides it when both are set).
TEST(BasisStoreDisk, ControllerHonorsArrowBasisDirEnvironmentVariable) {
  const topo::Network net = topo::build_b4();
  util::Rng trng(7);
  traffic::TrafficParams tp;
  tp.num_matrices = 1;
  const auto tms = traffic::generate_traffic(net, tp, trng);

  ctrl::ControllerConfig config;
  config.scheme = ctrl::Scheme::kFfc1;
  config.horizon_s = 900.0;
  config.te_interval_s = 600.0;
  config.tunnels.tunnels_per_flow = 4;
  config.scenarios.probability_cutoff = 0.002;
  config.demand_scale = 0.3;

  const std::string dir = ::testing::TempDir() + "basis_dir_env";
  std::filesystem::create_directories(dir);
  const std::string file = BasisStore::file_in(dir);
  std::filesystem::remove(file);

  ASSERT_EQ(::setenv("ARROW_BASIS_DIR", dir.c_str(), 1), 0);
  util::Rng rng(5);
  ctrl::run_controller(net, tms, {}, config, rng);
  ASSERT_EQ(::unsetenv("ARROW_BASIS_DIR"), 0);
  EXPECT_TRUE(std::filesystem::exists(file));
}

}  // namespace
}  // namespace arrow::solver
