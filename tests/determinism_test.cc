// Deterministic parallelism: the offline ARROW stage and the evaluation
// sweep must produce byte-identical results at any thread count. This is
// the contract documented in util/parallel.h — the pool only decides where
// work runs, never what work happens, and all randomness comes from
// counter-seeded per-index streams.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/sweep.h"
#include "te/arrow.h"
#include "te/basic.h"
#include "topo/builders.h"
#include "traffic/traffic.h"
#include "util/parallel.h"

namespace arrow {
namespace {

struct Workload {
  topo::Network net;
  std::vector<traffic::TrafficMatrix> matrices;
  std::vector<scenario::Scenario> scenarios;
  te::TunnelParams tunnels;
  std::unique_ptr<te::TeInput> input;

  Workload() : net(topo::build_b4()) {
    util::Rng rng(404);
    traffic::TrafficParams tp;
    tp.num_matrices = 1;
    matrices = traffic::generate_traffic(net, tp, rng);
    scenario::ScenarioParams sp;
    sp.probability_cutoff = 0.005;
    auto set = scenario::generate_scenarios(net, sp, rng);
    scenarios = scenario::remove_disconnecting(net, set.scenarios);
    tunnels.tunnels_per_flow = 5;
    input = std::make_unique<te::TeInput>(net, matrices[0], scenarios, tunnels);
    input->scale_demands(te::max_satisfiable_scale(*input) * 0.6);
  }
};

void expect_identical(const te::ArrowPrepared& a, const te::ArrowPrepared& b,
                      int threads) {
  ASSERT_EQ(a.tickets.size(), b.tickets.size());
  ASSERT_EQ(a.rwa.size(), b.rwa.size());
  for (std::size_t q = 0; q < a.tickets.size(); ++q) {
    EXPECT_EQ(a.rwa[q].optimal, b.rwa[q].optimal) << "threads=" << threads;
    EXPECT_EQ(a.rwa[q].total_restored_waves, b.rwa[q].total_restored_waves)
        << "scenario " << q << " threads=" << threads;
    EXPECT_EQ(a.tickets[q].failed_links, b.tickets[q].failed_links);
    const auto& ta = a.tickets[q].tickets;
    const auto& tb = b.tickets[q].tickets;
    ASSERT_EQ(ta.size(), tb.size()) << "scenario " << q
                                    << " threads=" << threads;
    for (std::size_t z = 0; z < ta.size(); ++z) {
      EXPECT_EQ(ta[z].waves, tb[z].waves)
          << "scenario " << q << " ticket " << z << " threads=" << threads;
      EXPECT_EQ(ta[z].gbps, tb[z].gbps);
      EXPECT_EQ(ta[z].path_waves, tb[z].path_waves);
    }
  }
}

TEST(Determinism, PrepareArrowIsThreadCountInvariant) {
  Workload w;
  te::ArrowParams params;
  params.tickets.num_tickets = 4;

  util::ThreadPool pool1(1);
  util::Rng rng1(99);
  const auto base = te::prepare_arrow(*w.input, params, rng1, pool1);
  ASSERT_FALSE(base.tickets.empty());

  for (int threads : {2, 8}) {
    util::ThreadPool pool(threads);
    util::Rng rng(99);
    const auto got = te::prepare_arrow(*w.input, params, rng, pool);
    expect_identical(base, got, threads);
    // The caller rng must be consumed identically too (one base draw).
    EXPECT_EQ(rng.next_u64(), [] {
      util::Rng r(99);
      (void)r.next_u64();
      return r.next_u64();
    }()) << "threads=" << threads;
  }
}

TEST(Determinism, RunSweepIsThreadCountInvariant) {
  Workload w;
  sim::SweepParams params;
  params.scales = {0.4, 0.8};
  params.run_ffc2 = false;   // keep the matrix of solves small
  params.run_teavar = false;
  params.tunnels = w.tunnels;
  params.arrow.tickets.num_tickets = 4;

  util::ThreadPool pool1(1);
  util::Rng rng1(31);
  const auto base =
      sim::run_sweep(w.net, w.matrices, w.scenarios, params, rng1, pool1);

  for (int threads : {2, 8}) {
    util::ThreadPool pool(threads);
    util::Rng rng(31);
    const auto got =
        sim::run_sweep(w.net, w.matrices, w.scenarios, params, rng, pool);
    ASSERT_EQ(got.schemes, base.schemes) << "threads=" << threads;
    for (const auto& scheme : base.schemes) {
      // Byte-identical, not approximately equal: same chains, same scale
      // order, same merge order => the exact same doubles.
      EXPECT_EQ(got.availability.at(scheme), base.availability.at(scheme))
          << scheme << " threads=" << threads;
      EXPECT_EQ(got.throughput.at(scheme), base.throughput.at(scheme))
          << scheme << " threads=" << threads;
      EXPECT_EQ(got.simplex_iterations.at(scheme),
                base.simplex_iterations.at(scheme))
          << scheme << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace arrow
