// Tests for the event-driven physical-layer restoration latency simulator.
#include <algorithm>

#include <gtest/gtest.h>

#include "optical/event_sim.h"
#include "optical/latency.h"
#include "optical/rwa.h"
#include "topo/builders.h"

namespace arrow::optical {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&](double) { order.push_back(3); });
  q.schedule(1.0, [&](double) { order.push_back(1); });
  q.schedule(2.0, [&](double) { order.push_back(2); });
  EXPECT_DOUBLE_EQ(q.run(), 3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesRunInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&](double) { order.push_back(10); });
  q.schedule(1.0, [&](double) { order.push_back(20); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{10, 20}));
}

TEST(EventQueue, HandlersMayScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&](double now) {
    ++fired;
    q.schedule(now + 1.0, [&](double) { ++fired; });
  });
  EXPECT_DOUBLE_EQ(q.run(), 2.0);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RejectsPastScheduling) {
  EventQueue q;
  q.schedule(5.0, [&](double now) {
    EXPECT_THROW(q.schedule(now - 1.0, [](double) {}), std::logic_error);
  });
  q.run();
}

TEST(AmpCount, SpacingMath) {
  EXPECT_EQ(amp_count(0.0, 64.0), 0);
  EXPECT_EQ(amp_count(64.0, 64.0), 1);
  EXPECT_EQ(amp_count(65.0, 64.0), 2);
  EXPECT_EQ(amp_count(2000.0, 83.0), 25);
}

class LatencyFixture : public ::testing::Test {
 protected:
  LatencyFixture() : net_(topo::build_testbed()) {
    RwaOptions opt;
    opt.integer = true;
    rwa_ = solve_rwa(net_, cuts_, opt);
    plan_ = plan_from_restoration(net_, rwa_.links);
  }
  topo::Network net_;
  std::vector<topo::FiberId> cuts_{2};
  RwaResult rwa_;
  std::vector<WavePlan> plan_;
};

TEST_F(LatencyFixture, PlanCoversAllRestoredWaves) {
  EXPECT_EQ(plan_.size(), 14u);
  double gbps = 0.0;
  for (const auto& wp : plan_) gbps += wp.gbps;
  EXPECT_DOUBLE_EQ(gbps, 2800.0);
}

TEST_F(LatencyFixture, ArrowIsSecondsLegacyIsMinutes) {
  util::Rng rng(3);
  LatencyParams arrow;  // noise loading on
  const auto a = simulate_restoration(net_, cuts_, plan_, arrow, rng);
  LatencyParams legacy;
  legacy.noise_loading = false;
  const auto l = simulate_restoration(net_, cuts_, plan_, legacy, rng);
  EXPECT_GT(a.total_s, 3.0);
  EXPECT_LT(a.total_s, 15.0);          // paper: 8 s
  EXPECT_GT(l.total_s, 600.0);         // paper: 1021 s
  EXPECT_LT(l.total_s, 2000.0);
  EXPECT_GT(l.total_s / a.total_s, 50.0);  // paper: 127x
  EXPECT_EQ(a.amplifiers_touched, 0);
  EXPECT_GT(l.amplifiers_touched, 20);
}

TEST_F(LatencyFixture, RestoresExactlyTheLostCapacity) {
  util::Rng rng(5);
  const auto res = simulate_restoration(net_, cuts_, plan_, LatencyParams{},
                                        rng);
  EXPECT_DOUBLE_EQ(res.lost_gbps, 2800.0);
  EXPECT_DOUBLE_EQ(res.restored_gbps, 2800.0);
}

TEST_F(LatencyFixture, TimelineIsMonotone) {
  util::Rng rng(7);
  const auto res = simulate_restoration(net_, cuts_, plan_, LatencyParams{},
                                        rng);
  ASSERT_FALSE(res.timeline.empty());
  for (std::size_t i = 1; i < res.timeline.size(); ++i) {
    EXPECT_GE(res.timeline[i].t_s, res.timeline[i - 1].t_s);
    EXPECT_GE(res.timeline[i].restored_gbps,
              res.timeline[i - 1].restored_gbps);
  }
  EXPECT_DOUBLE_EQ(res.timeline.back().restored_gbps, res.restored_gbps);
}

TEST_F(LatencyFixture, ModulationChangeDelaysWave) {
  util::Rng rng(9);
  auto plan = plan_;
  plan[0].needs_mod_change = true;
  LatencyParams p;
  const auto res = simulate_restoration(net_, cuts_, plan, p, rng);
  EXPECT_GE(res.total_s, p.modulation_change_s);
}

TEST_F(LatencyFixture, EmptyPlanRestoresNothing) {
  util::Rng rng(11);
  const auto res =
      simulate_restoration(net_, cuts_, {}, LatencyParams{}, rng);
  EXPECT_DOUBLE_EQ(res.restored_gbps, 0.0);
  EXPECT_DOUBLE_EQ(res.lost_gbps, 2800.0);
  EXPECT_DOUBLE_EQ(res.total_s, 0.0);
}

TEST_F(LatencyFixture, LegacyLatencyScalesWithPathLength) {
  util::Rng rng(13);
  LatencyParams legacy;
  legacy.noise_loading = false;
  legacy.amp_settle_jitter_s = 0.0;
  // Single-wave plans over a short (1 fiber) vs long (2 fiber) path.
  std::vector<WavePlan> short_plan{plan_[0]};
  short_plan[0].path = {0};  // A-B, 500 km
  std::vector<WavePlan> long_plan{plan_[0]};
  long_plan[0].path = {1, 2};  // B-C + C-D... C-D is cut; use {0, 1}
  long_plan[0].path = {0, 1};
  const auto s = simulate_restoration(net_, cuts_, short_plan, legacy, rng);
  const auto l = simulate_restoration(net_, cuts_, long_plan, legacy, rng);
  EXPECT_GT(l.total_s, s.total_s);
}

TEST(Latency, NeedsRetuneDetection) {
  const topo::Network net = topo::build_testbed();
  RwaOptions opt;
  opt.integer = true;
  const RwaResult rwa = solve_rwa(net, {2}, opt);
  const auto plan = plan_from_restoration(net, rwa.links);
  // Waves restored onto slots the link originally used need no retune.
  for (const auto& wp : plan) {
    const auto& link = net.ip_links[static_cast<std::size_t>(wp.link)];
    bool original = false;
    for (const auto& w : link.waves) original |= w.slot == wp.slot;
    EXPECT_EQ(wp.needs_retune, !original);
  }
}


TEST_F(LatencyFixture, PowerTraceFlatUnderNoiseLoading) {
  util::Rng rng(15);
  const auto res =
      simulate_restoration(net_, cuts_, plan_, LatencyParams{}, rng);
  ASSERT_GE(res.power_timeline.size(), 2u);
  for (const auto& [t, db] : res.power_timeline) {
    (void)t;
    EXPECT_DOUBLE_EQ(db, 0.0);  // spectrum always fully lit
  }
}

TEST_F(LatencyFixture, PowerTraceStepsUnderLegacyOperation) {
  util::Rng rng(16);
  LatencyParams legacy;
  legacy.noise_loading = false;
  const auto res = simulate_restoration(net_, cuts_, plan_, legacy, rng);
  ASSERT_GE(res.monitored_fiber, 0);
  ASSERT_GT(res.power_timeline.size(), 2u);
  // Settled power rises as wavelengths land; the last settled sample equals
  // 10 log10((baseline + waves)/baseline) for the monitored fiber.
  int waves_on_fiber = 0;
  for (const auto& wp : plan_) {
    for (topo::FiberId f : wp.path) {
      if (f == res.monitored_fiber) ++waves_on_fiber;
    }
  }
  EXPECT_GT(waves_on_fiber, 0);
  const double final_db = res.power_timeline.back().second;
  EXPECT_GT(final_db, 0.0);
  EXPECT_LT(final_db, 15.0);
  // Samples are time-ordered and power trends upward overall.
  for (std::size_t i = 1; i < res.power_timeline.size(); ++i) {
    EXPECT_GE(res.power_timeline[i].first,
              res.power_timeline[i - 1].first);
  }
  EXPECT_GT(final_db, res.power_timeline.front().second);
}

}  // namespace
}  // namespace arrow::optical
