// Paper-fidelity integration test: the Fig. 7 example, end to end.
//
// Two IP links traverse fiber B-C: IP1 (A<->C, 4 waves) and IP2 (B<->C,
// 8 waves), 100 Gbps per wave. When B-C is cut, the top surrogate path
// (B-D-C) has exactly 3 continuity-feasible free slots and the bottom one
// (B-E-C) has 2 — so only 5 of 12 waves (500 Gbps) are restorable, split
// between IP1 and IP2 in several ways:
//
//   candidate 1: (IP1=200, IP2=300)  ->  throughput 100 + 300 = 400
//   candidate 2: (IP1=100, IP2=400)  ->  throughput 100 + 400 = 500  (best)
//   candidate 3: (IP1=300, IP2=200)  ->  throughput 100 + 200 = 300
//
// with demands IP1=100, IP2=400. All candidates restore the same total
// (500 Gbps): only the demand-aware choice separates them — exactly the
// paper's motivation for LotteryTickets.
#include <algorithm>

#include <gtest/gtest.h>

#include "optical/rwa.h"
#include "te/arrow.h"
#include "te/basic.h"
#include "ticket/ticket.h"
#include "topo/network.h"
#include "traffic/traffic.h"

namespace arrow {
namespace {

// Sites/ROADMs: A=0, B=1, C=2, D=3, E=4.
// Fibers: 0:B-C (cut), 1:B-D, 2:D-C (top), 3:B-E, 4:E-C (bottom), 5:A-B.
topo::Network fig7_network() {
  topo::Network net;
  net.name = "Fig7";
  net.num_sites = 5;
  net.roadm_of_site = {0, 1, 2, 3, 4};
  net.optical.num_roadms = 5;
  const auto fiber = [](int id, int a, int b) {
    topo::Fiber f;
    f.id = id;
    f.a = a;
    f.b = b;
    f.length_km = 100.0;
    f.slots = 12;
    return f;
  };
  net.optical.fibers = {fiber(0, 1, 2), fiber(1, 1, 3), fiber(2, 3, 2),
                        fiber(3, 1, 4), fiber(4, 4, 2), fiber(5, 0, 1)};
  net.optical.finalize();

  const auto add_link = [&](int src, int dst, std::vector<int> path,
                            int first_slot, int waves) {
    topo::IpLink link;
    link.id = static_cast<int>(net.ip_links.size());
    link.src = src;
    link.dst = dst;
    double km = 0.0;
    for (int f : path) km += net.optical.fiber_length(f);
    for (int i = 0; i < waves; ++i) {
      topo::Wavelength w;
      w.slot = first_slot + i;
      w.gbps = 100.0;
      w.fiber_path = path;
      w.path_km = km;
      link.waves.push_back(std::move(w));
    }
    net.ip_links.push_back(std::move(link));
  };
  // IP1: A<->C through B (pass-through at the optical layer), 4 waves.
  add_link(0, 2, {5, 0}, 0, 4);
  // IP2: B<->C, 8 waves.
  add_link(1, 2, {0}, 4, 8);
  // Spectrum blockers: dummy links leaving exactly 3 free common slots on
  // the top path (B-D occupies slots 0-8) and 2 on the bottom (B-E
  // occupies 0-9). D-C and E-C stay empty, so continuity binds at B-D/B-E.
  add_link(1, 3, {1}, 0, 9);
  add_link(1, 4, {3}, 0, 10);
  net.validate();
  return net;
}

traffic::TrafficMatrix fig7_demands() {
  traffic::TrafficMatrix tm;
  tm.demands.push_back({0, 2, 100.0});  // IP1's flow
  tm.demands.push_back({1, 2, 400.0});  // IP2's flow
  return tm;
}

class Fig7 : public ::testing::Test {
 protected:
  Fig7()
      : net_(fig7_network()),
        scenarios_{{{0}, 0.01}},
        input_(net_, fig7_demands(), scenarios_, tunnel_params()) {}

  static te::TunnelParams tunnel_params() {
    te::TunnelParams p;
    p.tunnels_per_flow = 1;  // each flow rides exactly its IP link
    return p;
  }

  topo::Network net_;
  std::vector<scenario::Scenario> scenarios_;
  te::TeInput input_;
};

TEST_F(Fig7, RwaRestoresExactlyFiveWaves) {
  const auto rwa = optical::solve_rwa(net_, {0});
  ASSERT_TRUE(rwa.optimal);
  ASSERT_EQ(rwa.links.size(), 2u);
  EXPECT_NEAR(rwa.total_restored_waves, 5.0, 1e-6);
  // Both links' surrogate paths avoid the cut fiber and stay in reach.
  for (const auto& lr : rwa.links) {
    EXPECT_EQ(lr.original_gbps, 100.0);
    for (const auto& sp : lr.paths) {
      EXPECT_EQ(std::find(sp.fibers.begin(), sp.fibers.end(), 0),
                sp.fibers.end());
    }
  }
}

TEST_F(Fig7, CandidateThroughputsMatchThePaper) {
  const auto rwa = optical::solve_rwa(net_, {0});
  ASSERT_TRUE(rwa.optimal);
  te::ArrowParams ap;
  te::ArrowPrepared prepared;
  prepared.rwa.push_back(rwa);

  // Hand-build the three candidates of Figs. 7(b)-(d). Ticket link order
  // follows rwa.links (IP link 0 = IP1 first).
  const bool ip1_first = rwa.links[0].link == 0;
  const auto make = [&](int ip1_waves, int ip2_waves) {
    ticket::LotteryTicket t;
    const int w0 = ip1_first ? ip1_waves : ip2_waves;
    const int w1 = ip1_first ? ip2_waves : ip1_waves;
    t.waves = {w0, w1};
    t.gbps = {100.0 * w0, 100.0 * w1};
    t.path_waves = {{w0, 0}, {w1, 0}};  // path split irrelevant to the TE
    return t;
  };
  ticket::TicketSet set;
  set.failed_links = {rwa.links[0].link, rwa.links[1].link};
  set.tickets = {make(2, 3), make(1, 4), make(3, 2)};
  prepared.tickets.push_back(set);

  const double expected[] = {400.0, 500.0, 300.0};
  for (int z = 0; z < 3; ++z) {
    const auto sol = te::solve_arrow_with_winners(input_, prepared, {z});
    ASSERT_TRUE(sol.optimal) << "candidate " << z + 1;
    EXPECT_NEAR(sol.total_admitted(), expected[z], 1e-4)
        << "candidate " << z + 1;
  }

  // ARROW's Phase I must pick candidate 2 (the demand-aware winner).
  const auto arrow_sol = te::solve_arrow(input_, prepared, ap);
  ASSERT_TRUE(arrow_sol.optimal);
  EXPECT_EQ(arrow_sol.winner[0], 1);
  EXPECT_NEAR(arrow_sol.total_admitted(), 500.0, 1e-4);
}

TEST_F(Fig7, FullPipelineFindsTheWinner) {
  // End to end: RWA -> Algorithm 1 tickets -> Phase I -> Phase II. With
  // enough tickets the (1, 4) split must be discovered and selected.
  te::ArrowParams ap;
  ap.tickets.num_tickets = 24;
  ap.tickets.delta = 2;
  ap.include_naive_candidate = false;
  util::Rng rng(5);
  const auto prepared = te::prepare_arrow(input_, ap, rng);
  const auto sol = te::solve_arrow(input_, prepared, ap);
  ASSERT_TRUE(sol.optimal);
  EXPECT_NEAR(sol.total_admitted(), 500.0, 1e-4);
  // The winning ticket gives IP2 400 Gbps and IP1 100 Gbps.
  const auto& restored = sol.restored[0];
  EXPECT_NEAR(restored.at(0), 100.0, 1e-6);
  EXPECT_NEAR(restored.at(1), 400.0, 1e-6);
}

TEST_F(Fig7, NaiveCanBeSuboptimalHere) {
  // The optical-only plan maximizes total restoration but is free to pick
  // any split; whatever it picks, ARROW with tickets does at least as well.
  te::ArrowParams ap;
  ap.tickets.num_tickets = 24;
  util::Rng rng(6);
  const auto prepared = te::prepare_arrow(input_, ap, rng);
  const auto naive = te::solve_arrow_naive(input_, prepared, ap);
  const auto arrow_sol = te::solve_arrow(input_, prepared, ap);
  ASSERT_TRUE(naive.optimal);
  ASSERT_TRUE(arrow_sol.optimal);
  EXPECT_GE(arrow_sol.total_admitted(), naive.total_admitted() - 1e-6);
  EXPECT_NEAR(arrow_sol.total_admitted(), 500.0, 1e-4);
}

}  // namespace
}  // namespace arrow
