// Tests for the two-layer network model, the Table 4 topology builders, and
// the IP-over-optical provisioning pipeline.
#include <algorithm>
#include <functional>
#include <set>

#include <gtest/gtest.h>

#include "topo/builders.h"
#include "topo/modulation.h"
#include "topo/network.h"

namespace arrow::topo {
namespace {

TEST(Modulation, Table6ReachBoundaries) {
  EXPECT_DOUBLE_EQ(best_modulation_gbps(999.0), 400.0);
  EXPECT_DOUBLE_EQ(best_modulation_gbps(1000.0), 400.0);
  EXPECT_DOUBLE_EQ(best_modulation_gbps(1001.0), 300.0);
  EXPECT_DOUBLE_EQ(best_modulation_gbps(1500.0), 300.0);
  EXPECT_DOUBLE_EQ(best_modulation_gbps(2999.0), 200.0);
  EXPECT_DOUBLE_EQ(best_modulation_gbps(5000.0), 100.0);
  EXPECT_DOUBLE_EQ(best_modulation_gbps(5001.0), 0.0);
}

TEST(Modulation, ReachLookup) {
  EXPECT_DOUBLE_EQ(reach_for_gbps(100.0), 5000.0);
  EXPECT_DOUBLE_EQ(reach_for_gbps(400.0), 1000.0);
  EXPECT_DOUBLE_EQ(reach_for_gbps(123.0), 0.0);
}

TEST(Builders, Table4Counts) {
  const Network b4 = build_b4();
  EXPECT_EQ(b4.num_sites, 12);
  EXPECT_EQ(b4.optical.num_roadms, 12);
  EXPECT_EQ(b4.optical.fibers.size(), 19u);
  EXPECT_EQ(b4.ip_links.size(), 52u);

  const Network ibm = build_ibm();
  EXPECT_EQ(ibm.num_sites, 17);
  EXPECT_EQ(ibm.optical.fibers.size(), 23u);
  EXPECT_EQ(ibm.ip_links.size(), 85u);

  const Network fb = build_fbsynth();
  EXPECT_EQ(fb.num_sites, 34);
  EXPECT_EQ(fb.optical.num_roadms, 84);
  EXPECT_EQ(fb.optical.fibers.size(), 156u);
  EXPECT_EQ(fb.ip_links.size(), 262u);
}

TEST(Builders, TestbedMatchesFig11) {
  const Network tb = build_testbed();
  EXPECT_EQ(tb.num_sites, 4);
  EXPECT_EQ(tb.ip_links.size(), 4u);
  EXPECT_EQ(tb.total_wavelengths(), 16);
  double total_km = 0.0;
  for (const auto& f : tb.optical.fibers) total_km += f.length_km;
  EXPECT_DOUBLE_EQ(total_km, 2160.0);
  double total_cap = 0.0;
  for (const auto& l : tb.ip_links) total_cap += l.capacity_gbps();
  EXPECT_DOUBLE_EQ(total_cap, 3200.0);  // 16 waves at 200 Gbps
  // Cutting fiber C-D (id 2) must fail exactly 3 IP links with 2.8 Tbps.
  const auto failed = tb.failed_ip_links({2});
  EXPECT_EQ(failed.size(), 3u);
  double lost = 0.0;
  for (auto e : failed) lost += tb.ip_links[static_cast<std::size_t>(e)].capacity_gbps();
  EXPECT_DOUBLE_EQ(lost, 2800.0);
}

TEST(Builders, DeterministicGivenSeed) {
  const Network a = build_b4(77);
  const Network b = build_b4(77);
  ASSERT_EQ(a.ip_links.size(), b.ip_links.size());
  for (std::size_t i = 0; i < a.ip_links.size(); ++i) {
    EXPECT_EQ(a.ip_links[i].src, b.ip_links[i].src);
    EXPECT_EQ(a.ip_links[i].waves.size(), b.ip_links[i].waves.size());
  }
}

TEST(Network, SpectrumOccupancyMatchesWaves) {
  const Network tb = build_testbed();
  const auto occ = tb.spectrum_occupancy();
  // Fiber C-D (id 2) carries 14 waves; fiber A-B (id 0) carries 2.
  int cd = 0, ab = 0;
  for (bool b : occ[2]) cd += b ? 1 : 0;
  for (bool b : occ[0]) ab += b ? 1 : 0;
  EXPECT_EQ(cd, 14);
  EXPECT_EQ(ab, 2);
}

TEST(Network, ProvisionedGbps) {
  const Network tb = build_testbed();
  EXPECT_DOUBLE_EQ(tb.provisioned_gbps(2), 2800.0);  // C-D
  EXPECT_DOUBLE_EQ(tb.provisioned_gbps(0), 400.0);   // A-B
}

TEST(Network, IpLinkPathKm) {
  const Network tb = build_testbed();
  // A<->C runs A-D-C: 560 + 560.
  EXPECT_DOUBLE_EQ(tb.ip_link_path_km(1), 1120.0);
}

TEST(Network, FailedIpLinksEmptyForHealthyFiber) {
  const Network b4 = build_b4();
  EXPECT_TRUE(b4.failed_ip_links({}).empty());
}

TEST(Network, ValidateCatchesSlotCollision) {
  Network net = build_testbed();
  // Force two wavelengths onto the same (fiber, slot).
  net.ip_links[0].waves[1].slot = net.ip_links[0].waves[0].slot;
  EXPECT_THROW(net.validate(), std::logic_error);
}

TEST(Network, ValidateCatchesBrokenPath) {
  Network net = build_testbed();
  net.ip_links[0].waves[0].fiber_path = {2};  // C-D fiber, but link is A-B
  EXPECT_THROW(net.validate(), std::logic_error);
}

// Property sweep over seeds: every generated network satisfies the model
// invariants and the provisioning caps.
class ProvisionProperty : public ::testing::TestWithParam<int> {};

TEST_P(ProvisionProperty, InvariantsHold) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  for (const Network& net :
       {build_b4(seed), build_ibm(seed), build_fbsynth(seed)}) {
    ASSERT_NO_THROW(net.validate());
    // Wavelength continuity by construction: one slot along the whole path —
    // validate() checks it; additionally modulation must match path length.
    for (const auto& link : net.ip_links) {
      for (const auto& w : link.waves) {
        EXPECT_LE(w.path_km, reach_for_gbps(w.gbps) + 1e-6)
            << net.name << " wave exceeds modulation reach";
        EXPECT_GT(w.gbps, 0.0);
      }
    }
    // Utilization stays under the provisioning cap (~0.62 by default,
    // matching Fig. 5's "95% of fibers below 60%").
    for (double u : net.spectrum_utilization()) {
      EXPECT_LE(u, 0.71) << net.name;
    }
    // Each IP link's endpoints differ and tie back to real sites.
    for (const auto& link : net.ip_links) {
      EXPECT_NE(link.src, link.dst);
      EXPECT_LT(link.src, net.num_sites);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProvisionProperty, ::testing::Range(1, 6));

TEST(Provision, IpLayerConnectsAllSites) {
  // Union-find over IP links: the IP layer must be connected for TE.
  for (const Network& net : {build_b4(), build_ibm(), build_fbsynth()}) {
    std::vector<int> parent(static_cast<std::size_t>(net.num_sites));
    for (int i = 0; i < net.num_sites; ++i) parent[static_cast<std::size_t>(i)] = i;
    const std::function<int(int)> find = [&](int x) {
      return parent[static_cast<std::size_t>(x)] == x
                 ? x
                 : parent[static_cast<std::size_t>(x)] =
                       find(parent[static_cast<std::size_t>(x)]);
    };
    for (const auto& link : net.ip_links) {
      parent[static_cast<std::size_t>(find(link.src))] = find(link.dst);
    }
    for (int i = 1; i < net.num_sites; ++i) {
      EXPECT_EQ(find(i), find(0)) << net.name << " IP layer disconnected";
    }
  }
}

TEST(Provision, ExpressLinksExist) {
  // FBsynth is built with 35% express links; at least some IP links must
  // traverse more than one fiber (passing through intermediate ROADMs).
  const Network fb = build_fbsynth();
  int multi_hop = 0;
  for (const auto& link : fb.ip_links) {
    if (link.fiber_path().size() > 1) ++multi_hop;
  }
  EXPECT_GT(multi_hop, 20);
}


TEST(Network, UpgradeSpectrumDoublesSlots) {
  Network net = build_testbed();
  upgrade_spectrum(net);
  for (const auto& f : net.optical.fibers) {
    EXPECT_EQ(f.slots, 2 * kSpectrumSlots);
  }
  // Existing wavelengths are untouched; utilization halves.
  EXPECT_EQ(net.total_wavelengths(), 16);
  const auto util = net.spectrum_utilization();
  for (double u : util) EXPECT_LE(u, 0.08);
}

TEST(Network, UpgradeSpectrumRefusesToShrink) {
  Network net = build_testbed();
  EXPECT_THROW(upgrade_spectrum(net, 8), std::logic_error);
}

}  // namespace
}  // namespace arrow::topo
