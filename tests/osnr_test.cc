// Tests for the OSNR link-budget model and its consistency with the
// Table 6 transponder spec sheet.
#include <gtest/gtest.h>

#include "optical/osnr.h"
#include "topo/modulation.h"

namespace arrow::optical {
namespace {

TEST(Osnr, DecreasesWithDistance) {
  double prev = 1e9;
  for (double km : {80.0, 400.0, 1000.0, 3000.0, 6000.0}) {
    const double osnr = path_osnr_db(km);
    EXPECT_LT(osnr, prev);
    prev = osnr;
  }
}

TEST(Osnr, ThreeDbPerDoubling) {
  // Doubling the span count costs 10 log10(2) ~ 3 dB.
  const double one = path_osnr_db(800.0);
  const double two = path_osnr_db(1600.0);
  EXPECT_NEAR(one - two, 3.01, 0.1);
}

TEST(Osnr, RequirementsAreMonotone) {
  const auto& reqs = osnr_requirements();
  for (std::size_t i = 1; i < reqs.size(); ++i) {
    EXPECT_LT(reqs[i].gbps, reqs[i - 1].gbps);
    EXPECT_LT(reqs[i].min_osnr_db, reqs[i - 1].min_osnr_db);
  }
}

TEST(Osnr, LimitedRateDecreasesWithDistance) {
  double prev = 1e9;
  for (double km : {200.0, 900.0, 2000.0, 4500.0}) {
    const double rate = osnr_limited_gbps(km);
    EXPECT_LE(rate, prev);
    prev = rate;
    EXPECT_GE(rate, 0.0);
  }
}

TEST(Osnr, ReachInversesLimitedRate) {
  for (double gbps : {100.0, 200.0, 300.0, 400.0}) {
    const double reach = osnr_reach_km(gbps);
    ASSERT_GT(reach, 0.0);
    // Inside the reach the rate is supported; well beyond it (past the next
    // amplifier span, since OSNR is stepwise in the span count) it is not.
    EXPECT_GE(osnr_limited_gbps(reach * 0.99), gbps);
    if (reach < 19999.0) {  // 100G can exceed the search cap
      EXPECT_LT(osnr_limited_gbps(reach * 1.2 + 200.0), gbps);
    }
  }
  EXPECT_DOUBLE_EQ(osnr_reach_km(123.0), 0.0);
}

TEST(Osnr, ConsistentWithTable6SpecSheet) {
  // Physics-derived reach must cover a healthy fraction of the Table 6
  // planning value at every rate (spec sheets bake in system margin below
  // the raw link budget) and preserve the ordering: lower rates reach
  // further. kModulationTable is ordered 400G -> 100G, so reach ascends.
  double prev_reach = 0.0;
  for (const auto& spec : topo::kModulationTable) {
    const double reach = osnr_reach_km(spec.gbps);
    EXPECT_GT(reach, 0.45 * spec.reach_km)
        << spec.gbps << "G: physics reach " << reach << " vs Table 6 "
        << spec.reach_km;
    EXPECT_GT(reach, prev_reach - 1e-9);
    prev_reach = reach;
  }
}

}  // namespace
}  // namespace arrow::optical
