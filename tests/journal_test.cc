// Crash-consistency suite for the controller state journal (ctest label:
// chaos).
//
// Three layers of paranoia, from cheap to full-drill:
//
//   * file format: round-trips, and every corruption — truncation, bit rot,
//     a torn write, a future format version — loads as the EMPTY state (a
//     cold start), never as an error and never as garbage;
//   * injected filesystem faults: a failed open / ENOSPC / failed rename
//     leaves the previous journal on disk as the truth and is reported;
//   * process-level chaos: this binary re-executes ITSELF as a victim that
//     journals in a tight loop, gets kill -9'd mid-write, and the survivor
//     must read a complete, checksummed journal — then a restarted
//     controller under total solver-fault pressure must serve the dead
//     process's last-good plan via the carry-forward rung, not cold ECMP.
//
// This file supplies its own main(): the self-exec drills need argv[0] and
// an environment-variable child mode, which gtest_main cannot provide.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "controller/controller.h"
#include "controller/journal.h"
#include "resilience/chaos.h"
#include "resilience/harness.h"
#include "topo/builders.h"
#include "traffic/traffic.h"
#include "util/clock.h"
#include "util/fs.h"
#include "util/hash.h"
#include "util/rng.h"

namespace arrow {
namespace {

const char* g_argv0 = "";

// Child-mode markers. When set, main() runs the child role instead of the
// test suite (the self-exec pattern shared with bench_basis_store).
constexpr const char* kJournalLoopEnv = "ARROW_JOURNAL_CHILD";
constexpr const char* kControllerCrashEnv = "ARROW_JOURNAL_CTRL_CHILD";

std::string temp_path(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "arrow_journal_test";
  std::filesystem::create_directories(dir);
  return dir + "/" + name;
}

ctrl::JournalPlan sample_plan() {
  ctrl::JournalPlan plan;
  plan.scheme = "ARROW";
  plan.admitted = {10.0, 20.0};
  plan.alloc = {{4.0, 6.0}, {20.0}};
  return plan;
}

std::string read_raw(const std::string& path) {
  auto bytes = util::read_file(path);
  return bytes ? *bytes : std::string();
}

void write_raw(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

bool is_empty_state(const ctrl::JournalState& s) {
  return !s.in_flight && !s.has_plan && s.run_id.empty() && s.topo_hash == 0 &&
         s.scenario_hash == 0;
}

// The controller fixture every journal/controller test (and the crash-drill
// child) builds — it must be byte-for-byte the same in parent and child so
// the journaled topology/scenario hashes line up across processes.
struct Fixture {
  topo::Network net;
  std::vector<traffic::TrafficMatrix> tms;
  ctrl::ControllerConfig config;

  Fixture() : net(topo::build_b4()) {
    util::Rng rng(7);
    traffic::TrafficParams tp;
    tp.num_matrices = 2;
    tms = traffic::generate_traffic(net, tp, rng);
    config.horizon_s = 2.0 * 3600.0;
    config.te_interval_s = 600.0;
    config.tunnels.tunnels_per_flow = 4;
    config.arrow.tickets.num_tickets = 4;
    config.scenarios.probability_cutoff = 0.002;
    config.demand_scale = 0.5;
    config.scheme = ctrl::Scheme::kArrow;
  }
};

// --- round trip --------------------------------------------------------------

TEST(Journal, MissingFileLoadsEmpty) {
  ctrl::StateJournal j(temp_path("nonexistent.bin"));
  EXPECT_TRUE(is_empty_state(j.load()));
}

TEST(Journal, RoundTripsStateAndAccumulates) {
  const std::string path = temp_path("roundtrip.bin");
  std::filesystem::remove(path);
  ctrl::StateJournal j(path);
  ASSERT_TRUE(j.begin_run("run-1", 111, 222));
  ASSERT_TRUE(j.record_plan(sample_plan()));

  ctrl::JournalState got = ctrl::StateJournal(path).load();
  EXPECT_TRUE(got.in_flight);
  EXPECT_TRUE(got.has_plan);
  EXPECT_EQ(got.run_id, "run-1");
  EXPECT_EQ(got.topo_hash, 111u);
  EXPECT_EQ(got.scenario_hash, 222u);
  EXPECT_EQ(got.plan.scheme, "ARROW");
  EXPECT_EQ(got.plan.admitted, sample_plan().admitted);
  EXPECT_EQ(got.plan.alloc, sample_plan().alloc);

  // end_run clears the in-flight marker but keeps the plan: a cleanly
  // stopped controller still leaves its last-good plan for the next one.
  ASSERT_TRUE(j.end_run());
  got = ctrl::StateJournal(path).load();
  EXPECT_FALSE(got.in_flight);
  EXPECT_TRUE(got.has_plan);
  EXPECT_EQ(j.writes(), 3);
  EXPECT_EQ(j.write_errors(), 0);
}

// --- corruption degrades to the empty state ---------------------------------

class JournalCorruption : public ::testing::Test {
 protected:
  JournalCorruption() : path_(temp_path("corrupt.bin")) {
    std::filesystem::remove(path_);
    ctrl::StateJournal j(path_);
    j.begin_run("run-c", 7, 9);
    j.record_plan(sample_plan());
    good_ = read_raw(path_);
  }
  std::string path_;
  std::string good_;
};

TEST_F(JournalCorruption, TruncationLoadsEmpty) {
  for (std::size_t keep : {good_.size() - 1, good_.size() / 2, std::size_t{5},
                           std::size_t{0}}) {
    write_raw(path_, good_.substr(0, keep));
    EXPECT_TRUE(is_empty_state(ctrl::StateJournal(path_).load()))
        << "kept " << keep << " of " << good_.size() << " bytes";
  }
}

TEST_F(JournalCorruption, BitRotLoadsEmpty) {
  // Flip one bit at a spread of offsets (header, payload, trailer).
  for (std::size_t at : {std::size_t{0}, std::size_t{9}, good_.size() / 2,
                         good_.size() - 1}) {
    std::string bad = good_;
    bad[at] = static_cast<char>(bad[at] ^ 0x10);
    write_raw(path_, bad);
    EXPECT_TRUE(is_empty_state(ctrl::StateJournal(path_).load()))
        << "bit flipped at offset " << at;
  }
}

TEST_F(JournalCorruption, FutureVersionLoadsEmptyEvenWithValidChecksum) {
  // Bump the format version (bytes 4..7, little-endian) and RE-SIGN the
  // file, so only the version gate — not the checksum — can reject it.
  std::string bad = good_;
  bad[4] = 99;
  const std::uint64_t sum =
      util::Fnv1a().bytes(bad.data(), bad.size() - 8).value();
  for (int i = 0; i < 8; ++i) {
    bad[bad.size() - 8 + static_cast<std::size_t>(i)] =
        static_cast<char>((sum >> (8 * i)) & 0xff);
  }
  write_raw(path_, bad);
  EXPECT_TRUE(is_empty_state(ctrl::StateJournal(path_).load()));
}

TEST_F(JournalCorruption, WrongMagicLoadsEmptyEvenWithValidChecksum) {
  std::string bad = good_;
  bad[0] = 'X';
  const std::uint64_t sum =
      util::Fnv1a().bytes(bad.data(), bad.size() - 8).value();
  for (int i = 0; i < 8; ++i) {
    bad[bad.size() - 8 + static_cast<std::size_t>(i)] =
        static_cast<char>((sum >> (8 * i)) & 0xff);
  }
  write_raw(path_, bad);
  EXPECT_TRUE(is_empty_state(ctrl::StateJournal(path_).load()));
}

// --- injected filesystem faults ----------------------------------------------

class JournalFsFaults : public ::testing::Test {
 protected:
  JournalFsFaults() : path_(temp_path("fsfaults.bin")), journal_(path_) {
    std::filesystem::remove(path_);
    journal_.begin_run("run-f", 1, 2);
    journal_.record_plan(sample_plan());
    good_ = read_raw(path_);
  }
  std::string path_;
  ctrl::StateJournal journal_;
  std::string good_;
};

TEST_F(JournalFsFaults, FailedOpenKeepsOldFileAndReports) {
  util::FsFaults f;
  f.fail_open = true;
  util::ScopedFsFaults scoped(f);
  ctrl::JournalPlan p = sample_plan();
  p.scheme = "never-lands";
  EXPECT_FALSE(journal_.record_plan(p));
  EXPECT_EQ(journal_.write_errors(), 1);
  EXPECT_EQ(read_raw(path_), good_);  // old file still the truth
}

TEST_F(JournalFsFaults, EnospcShortWriteKeepsOldFile) {
  util::FsFaults f;
  f.write_cap_bytes = 10;  // disk full after 10 bytes
  util::ScopedFsFaults scoped(f);
  EXPECT_FALSE(journal_.end_run());
  EXPECT_EQ(journal_.write_errors(), 1);
  EXPECT_EQ(read_raw(path_), good_);
  EXPECT_TRUE(ctrl::StateJournal(path_).load().in_flight);
}

TEST_F(JournalFsFaults, FailedFsyncKeepsOldFileAndReports) {
  // A write that cannot be made durable (fsync fails: dying disk, full
  // thin-provisioned volume) must be treated exactly like a failed write:
  // reported, and the previous journal stays the truth. Before
  // write_file_atomic fsynced at all, this fault was silently invisible.
  util::FsFaults f;
  f.fail_fsync = true;
  util::ScopedFsFaults scoped(f);
  EXPECT_FALSE(journal_.end_run());
  EXPECT_EQ(journal_.write_errors(), 1);
  EXPECT_EQ(read_raw(path_), good_);
  EXPECT_TRUE(ctrl::StateJournal(path_).load().in_flight);
}

TEST_F(JournalFsFaults, FailedRenameKeepsOldFile) {
  util::FsFaults f;
  f.fail_rename = true;
  util::ScopedFsFaults scoped(f);
  EXPECT_FALSE(journal_.end_run());
  EXPECT_EQ(journal_.write_errors(), 1);
  EXPECT_EQ(read_raw(path_), good_);
}

TEST_F(JournalFsFaults, TornWriteIsReportedAndRejectedOnLoad) {
  // The nastiest case: a truncated image lands under the REAL name. The
  // write must report failure and the loader must refuse the torn file —
  // degrading to a cold start, never to garbage state.
  {
    util::FsFaults f;
    f.write_cap_bytes = 24;
    f.torn_write = true;
    util::ScopedFsFaults scoped(f);
    EXPECT_FALSE(journal_.end_run());
    EXPECT_EQ(journal_.write_errors(), 1);
  }
  EXPECT_NE(read_raw(path_), good_);
  EXPECT_TRUE(is_empty_state(ctrl::StateJournal(path_).load()));
}

// --- controller integration --------------------------------------------------

TEST(JournalController, RunWritesJournalAndNextRunRecoversUnderFaults) {
  const std::string dir = ::testing::TempDir() + "arrow_journal_ctrl";
  std::filesystem::create_directories(dir);
  const std::string file = ctrl::StateJournal::file_in(dir);
  std::filesystem::remove(file);

  Fixture fx;
  fx.config.journal_dir = dir;

  // Run 1, fault-free: begin_run + one record_plan per solved matrix +
  // end_run all land on disk.
  {
    util::Rng rng(5);
    const auto report = ctrl::run_controller(fx.net, fx.tms, {}, fx.config, rng);
    EXPECT_FALSE(report.journal_recovered);
    EXPECT_EQ(report.journal_writes, 2 + static_cast<int>(fx.tms.size()));
    EXPECT_EQ(report.journal_write_errors, 0);
  }
  const ctrl::JournalState after1 = ctrl::StateJournal(file).load();
  ASSERT_TRUE(after1.has_plan);
  EXPECT_FALSE(after1.in_flight);  // clean shutdown

  // Run 2, every LP solve forced to fail: without the journal this run's
  // first matrix would land on cold ECMP (no last-good plan exists yet);
  // with it, every matrix must be served by carry-forward from the journaled
  // plan of run 1.
  resilience::FaultConfig storm;
  storm.seed = 11;
  storm.lp_fault_rate = 1.0;
  util::Rng rng(5);
  const auto drill =
      resilience::run_with_faults(fx.net, fx.tms, {}, fx.config, storm, rng);
  const auto& r = drill.report;
  EXPECT_TRUE(r.journal_recovered);
  EXPECT_FALSE(r.journal_prior_in_flight);
  ASSERT_GT(r.te_runs, 0);
  for (ctrl::Rung rung : r.rung_by_matrix) {
    EXPECT_EQ(rung, ctrl::Rung::kCarryForward);
  }
  EXPECT_EQ(r.fallback_counts[static_cast<int>(ctrl::Rung::kEcmp)], 0);
  EXPECT_TRUE(r.run_report.journal_recovered);
}

TEST(JournalController, ForeignJournalIsNotAdopted) {
  // A journal whose hashes do not match this network must not seed the
  // ladder — and a crash before the first record_plan must not leave the
  // foreign plan blessed with OUR hashes.
  const std::string dir = ::testing::TempDir() + "arrow_journal_foreign";
  std::filesystem::create_directories(dir);
  const std::string file = ctrl::StateJournal::file_in(dir);
  std::filesystem::remove(file);
  {
    ctrl::StateJournal foreign(file);
    foreign.begin_run("foreign-run", 0xdead, 0xbeef);
    foreign.record_plan(sample_plan());
  }

  Fixture fx;
  fx.config.journal_dir = dir;
  util::Rng rng(5);
  const auto report = ctrl::run_controller(fx.net, fx.tms, {}, fx.config, rng);
  EXPECT_FALSE(report.journal_recovered);
  EXPECT_TRUE(report.journal_prior_in_flight);  // the foreign writer died

  // After our run the journal must hold OUR plan under OUR hashes, not the
  // foreign plan re-stamped.
  const ctrl::JournalState after = ctrl::StateJournal(file).load();
  ASSERT_TRUE(after.has_plan);
  EXPECT_NE(after.topo_hash, 0xdeadu);
  EXPECT_NE(after.plan.admitted, sample_plan().admitted);
}

// --- process-level chaos drills ----------------------------------------------

bool wait_for_file(const std::string& path, double timeout_s) {
  for (double waited = 0.0; waited < timeout_s; waited += 0.01) {
    if (std::filesystem::exists(path)) return true;
    util::sleep_s(0.01);
  }
  return false;
}

// Child role 1: journal plans in a tight loop forever (killed by the parent).
int journal_loop_child(const std::string& path) {
  ctrl::StateJournal j(path);
  ctrl::JournalPlan plan = sample_plan();
  plan.scheme = "child";
  if (!j.begin_run("child-run", 1, 2)) return 3;
  if (!j.record_plan(plan)) return 3;
  if (!util::write_file_atomic(path + ".ready", "ok")) return 3;
  for (std::uint64_t i = 0;; ++i) {
    plan.admitted[0] = static_cast<double>(i);
    j.record_plan(plan);
  }
}

TEST(JournalChaos, KillNineMidWriteLeavesACompleteJournal) {
  const std::string path = temp_path("kill9.bin");
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".ready");

  const int pid = resilience::spawn_self(g_argv0, {{kJournalLoopEnv, path}});
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(wait_for_file(path + ".ready", 30.0));
  // The child is now rewriting the journal as fast as it can; SIGKILL lands
  // mid-write with overwhelming probability.
  ASSERT_TRUE(resilience::kill_child(pid, /*delay_s=*/0.05));
  const auto exit = resilience::wait_child(pid);
  EXPECT_TRUE(exit.signaled);
  EXPECT_EQ(exit.code, 9);

  // Atomic temp+rename means the survivor reads a COMPLETE journal — some
  // fully-written version, in-flight marker set, plan intact. Never a torn
  // file, never garbage.
  const ctrl::JournalState got = ctrl::StateJournal(path).load();
  EXPECT_TRUE(got.in_flight);  // the writer died mid-run
  ASSERT_TRUE(got.has_plan);
  EXPECT_EQ(got.run_id, "child-run");
  EXPECT_EQ(got.plan.scheme, "child");
  ASSERT_EQ(got.plan.admitted.size(), 2u);
  ASSERT_EQ(got.plan.alloc.size(), 2u);
  EXPECT_EQ(got.plan.alloc[0].size(), 2u);
  EXPECT_EQ(got.plan.alloc[1].size(), 1u);
}

// Child role 2: the full acceptance drill's victim. Runs a real controller
// with the journal enabled (identical fixture to the parent), then reopens
// the journal as a second in-flight run and rewrites the last-good plan
// forever — the exact on-disk footprint of a controller murdered mid-period.
int controller_crash_child(const std::string& dir) {
  Fixture fx;
  fx.config.journal_dir = dir;
  util::Rng rng(5);
  (void)ctrl::run_controller(fx.net, fx.tms, {}, fx.config, rng);

  ctrl::StateJournal j(ctrl::StateJournal::file_in(dir));
  ctrl::JournalState st = j.load();
  if (!st.has_plan) return 3;
  j.reset(st);
  if (!j.begin_run("crash-run", st.topo_hash, st.scenario_hash)) return 3;
  if (!util::write_file_atomic(dir + "/ready", "ok")) return 3;
  for (;;) j.record_plan(st.plan);
}

TEST(JournalChaos, RestartedControllerRecoversFromAKilledPredecessor) {
  const std::string dir = ::testing::TempDir() + "arrow_journal_crash";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  const int pid = resilience::spawn_self(g_argv0, {{kControllerCrashEnv, dir}});
  ASSERT_GT(pid, 0);
  // The child runs a full controller pass first; give it generous headroom.
  ASSERT_TRUE(wait_for_file(dir + "/ready", 120.0));
  ASSERT_TRUE(resilience::kill_child(pid, /*delay_s=*/0.05));
  const auto exit = resilience::wait_child(pid);
  ASSERT_TRUE(exit.signaled);

  // The survivor: same network, every solve faulted. It must adopt the dead
  // process's journal (in-flight marker and all) and serve its last-good
  // plan via carry-forward — the acceptance criterion for this subsystem.
  Fixture fx;
  fx.config.journal_dir = dir;
  resilience::FaultConfig storm;
  storm.seed = 13;
  storm.lp_fault_rate = 1.0;
  util::Rng rng(5);
  const auto drill =
      resilience::run_with_faults(fx.net, fx.tms, {}, fx.config, storm, rng);
  const auto& r = drill.report;
  EXPECT_TRUE(r.journal_recovered);
  EXPECT_TRUE(r.journal_prior_in_flight);
  ASSERT_GT(r.te_runs, 0);
  EXPECT_EQ(r.rung_by_matrix[0], ctrl::Rung::kCarryForward);
  EXPECT_EQ(r.fallback_counts[static_cast<int>(ctrl::Rung::kEcmp)], 0);
  EXPECT_TRUE(r.run_report.journal_recovered);
  EXPECT_TRUE(r.run_report.journal_prior_in_flight);
}

}  // namespace
}  // namespace arrow

int main(int argc, char** argv) {
  if (const char* path = std::getenv(arrow::kJournalLoopEnv)) {
    return arrow::journal_loop_child(path);
  }
  if (const char* dir = std::getenv(arrow::kControllerCrashEnv)) {
    return arrow::controller_crash_child(dir);
  }
  arrow::g_argv0 = argv[0];
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
