// Warm-started simplex: re-solving a perturbed LP from a prior optimal
// basis must return the same optimum in fewer pivots, and must never cost
// correctness (shape mismatch or numerical trouble falls back cold).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "solver/lp.h"
#include "solver/model.h"
#include "te/basic.h"
#include "te/ffc.h"
#include "te/input.h"
#include "topo/builders.h"
#include "traffic/traffic.h"

namespace arrow {
namespace {

// A small but non-trivial LP: route 4 "flows" over shared capacities.
solver::Model make_model(double cap_scale) {
  solver::Model m;
  m.set_maximize();
  std::vector<solver::VarId> x;
  for (int i = 0; i < 8; ++i) {
    x.push_back(m.add_var(0.0, 10.0, 1.0 + 0.1 * i));
  }
  for (int i = 0; i < 4; ++i) {
    solver::LinExpr pair;
    pair.add_term(x[static_cast<std::size_t>(2 * i)], 1.0);
    pair.add_term(x[static_cast<std::size_t>(2 * i + 1)], 1.0);
    m.add_constr(pair, solver::Sense::kLe, 12.0 * cap_scale);
  }
  solver::LinExpr all;
  for (const auto& v : x) all.add_term(v, 1.0);
  m.add_constr(all, solver::Sense::kLe, 30.0 * cap_scale);
  return m;
}

TEST(WarmStart, ReSolveFromOwnBasisTakesNoPivots) {
  solver::Model m = make_model(1.0);
  const auto cold = m.solve();
  ASSERT_TRUE(cold.optimal());
  EXPECT_FALSE(cold.warm_started);
  ASSERT_FALSE(cold.basis.empty());
  EXPECT_GT(cold.simplex_iterations, 0);

  solver::Model again = make_model(1.0);
  const auto warm = again.solve(&cold.basis);
  ASSERT_TRUE(warm.optimal());
  EXPECT_TRUE(warm.warm_started);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9);
  // The supplied basis is already optimal: pricing finds nothing to do.
  EXPECT_LE(warm.simplex_iterations, 1);
}

TEST(WarmStart, PerturbedRhsReusesBasis) {
  solver::Model m = make_model(1.0);
  const auto first = m.solve();
  ASSERT_TRUE(first.optimal());

  solver::Model cold_model = make_model(1.07);
  const auto cold = cold_model.solve();
  ASSERT_TRUE(cold.optimal());

  solver::Model warm_model = make_model(1.07);
  const auto warm = warm_model.solve(&first.basis);
  ASSERT_TRUE(warm.optimal());
  EXPECT_TRUE(warm.warm_started);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-7 * std::abs(cold.objective));
  EXPECT_LE(warm.simplex_iterations, cold.simplex_iterations);
}

TEST(WarmStart, ShapeMismatchFallsBackCold) {
  solver::Model m = make_model(1.0);
  solver::Basis wrong;
  wrong.status.assign(3, solver::BasisStatus::kNonbasicLower);  // wrong size
  const auto res = m.solve(&wrong);
  ASSERT_TRUE(res.optimal());
  EXPECT_FALSE(res.warm_started);
}

TEST(WarmStart, ScopedCacheChainsTeSolves) {
  const topo::Network net = topo::build_b4();
  util::Rng rng(515);
  traffic::TrafficParams tp;
  tp.num_matrices = 1;
  const auto matrices = traffic::generate_traffic(net, tp, rng);
  scenario::ScenarioParams sp;
  sp.probability_cutoff = 0.005;
  auto set = scenario::generate_scenarios(net, sp, rng);
  const auto scenarios = scenario::remove_disconnecting(net, set.scenarios);
  te::TunnelParams tun;
  tun.tunnels_per_flow = 5;
  te::TeInput input(net, matrices[0], scenarios, tun);
  input.scale_demands(te::max_satisfiable_scale(input) * 0.7);

  // Cold reference at the perturbed scale.
  te::TeInput cold_input = input;
  cold_input.scale_demands(1.05);
  const te::TeSolution cold = te::solve_ffc(cold_input, te::FfcParams{1, 0});
  ASSERT_TRUE(cold.optimal);
  ASSERT_GT(cold.simplex_iterations, 0);

  // Warm chain: solve at the base scale to populate the cache, then at the
  // perturbed scale. Same LP shape, nudged bounds -> basis reuse.
  solver::ScopedWarmStartCache cache;
  const te::TeSolution first = te::solve_ffc(input, te::FfcParams{1, 0});
  ASSERT_TRUE(first.optimal);
  EXPECT_GE(cache.stores(), 1);
  input.scale_demands(1.05);
  const te::TeSolution warm = te::solve_ffc(input, te::FfcParams{1, 0});
  ASSERT_TRUE(warm.optimal);
  EXPECT_GE(cache.hits(), 1);

  // Same optimum (the LP is identical), strictly fewer pivots.
  const double tol = 1e-6 * std::max(1.0, std::abs(cold.objective));
  EXPECT_NEAR(warm.objective, cold.objective, tol);
  EXPECT_LT(warm.simplex_iterations, cold.simplex_iterations);
}

}  // namespace
}  // namespace arrow
