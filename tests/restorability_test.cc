// Tests for the shared RestorabilityCache and the model-build path
// (link->tunnel incidence index + parallel Phase I/II/ILP row generation):
// the cache must agree flag-for-flag with fresh restorable_flags
// computations, and the builds must produce bit-identical models — and
// therefore bit-identical TE solutions — at any thread count, with the
// cache shared or rebuilt locally. The single-thread private-cache build is
// the baseline every other configuration is compared against.
#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "te/arrow.h"
#include "te/basic.h"
#include "topo/builders.h"
#include "traffic/traffic.h"
#include "util/parallel.h"

namespace arrow::te {
namespace {

class RestorabilityFixture : public ::testing::Test {
 protected:
  RestorabilityFixture() : net_(topo::build_b4()) {
    util::Rng rng(51);
    traffic::TrafficParams tp;
    tp.num_matrices = 1;
    matrices_ = traffic::generate_traffic(net_, tp, rng);
    scenario::ScenarioParams sp;
    sp.probability_cutoff = 0.001;
    auto set = scenario::generate_scenarios(net_, sp, rng);
    scenarios_ = scenario::remove_disconnecting(net_, set.scenarios);
    TunnelParams tun;
    tun.tunnels_per_flow = 6;
    input_ = std::make_unique<TeInput>(net_, matrices_[0], scenarios_, tun);
    input_->scale_demands(max_satisfiable_scale(*input_));
    input_->scale_demands(0.8);
    params_.tickets.num_tickets = 5;
    prepared_ = prepare_arrow(*input_, params_, rng);
  }

  topo::Network net_;
  std::vector<traffic::TrafficMatrix> matrices_;
  std::vector<scenario::Scenario> scenarios_;
  std::unique_ptr<TeInput> input_;
  ArrowParams params_;
  ArrowPrepared prepared_;
};

// Every TeSolution field that defines the TE outcome, compared exactly:
// identical models solved by a deterministic simplex must agree to the bit,
// not just to a tolerance.
void expect_identical(const TeSolution& a, const TeSolution& b) {
  EXPECT_EQ(a.optimal, b.optimal);
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.alloc, b.alloc);
  EXPECT_EQ(a.winner, b.winner);
  EXPECT_EQ(a.restored, b.restored);
}

TEST_F(RestorabilityFixture, CachedFlagsMatchFreshComputation) {
  const RestorabilityCache cache(*input_, prepared_);
  ASSERT_EQ(cache.num_scenarios(), input_->num_scenarios());
  for (int q = 0; q < input_->num_scenarios(); ++q) {
    const auto& tickets = prepared_.tickets[static_cast<std::size_t>(q)];
    ASSERT_EQ(cache.num_tickets(q),
              static_cast<int>(tickets.tickets.size()));
    for (int z = 0; z < cache.num_tickets(q); ++z) {
      EXPECT_EQ(cache.flags(q, z),
                restorable_flags(*input_, q, tickets,
                                 tickets.tickets[static_cast<std::size_t>(z)]))
          << "q=" << q << " z=" << z;
    }
    // Out-of-range z selects the naive RWA-floor plan (the -1 convention).
    const auto naive_fresh = restorable_flags(
        *input_, q, tickets,
        ticket::naive_ticket(prepared_.rwa[static_cast<std::size_t>(q)]));
    EXPECT_EQ(cache.flags(q, -1), naive_fresh) << "q=" << q;
    EXPECT_EQ(cache.flags(q, cache.num_tickets(q)), naive_fresh) << "q=" << q;
  }
}

TEST_F(RestorabilityFixture, UnionIsOrOfPerTicketFlags) {
  const RestorabilityCache cache(*input_, prepared_);
  for (int q = 0; q < cache.num_scenarios(); ++q) {
    const auto& u = cache.union_flags(q);
    if (cache.num_tickets(q) == 0) {
      // No candidates: Phase I's only plan is the naive one.
      EXPECT_EQ(u, cache.flags(q, -1)) << "q=" << q;
      continue;
    }
    std::vector<char> expect(u.size(), 0);
    for (int z = 0; z < cache.num_tickets(q); ++z) {
      const auto& f = cache.flags(q, z);
      for (std::size_t i = 0; i < expect.size(); ++i) expect[i] |= f[i];
    }
    EXPECT_EQ(u, expect) << "q=" << q;
  }
}

TEST_F(RestorabilityFixture, CacheIsThreadCountInvariant) {
  util::ThreadPool p1(1), p2(2), p8(8);
  const RestorabilityCache c1(*input_, prepared_, p1);
  const RestorabilityCache c2(*input_, prepared_, p2);
  const RestorabilityCache c8(*input_, prepared_, p8);
  for (int q = 0; q < c1.num_scenarios(); ++q) {
    for (int z = -1; z < c1.num_tickets(q); ++z) {
      EXPECT_EQ(c1.flags(q, z), c2.flags(q, z));
      EXPECT_EQ(c1.flags(q, z), c8.flags(q, z));
    }
    EXPECT_EQ(c1.union_flags(q), c2.union_flags(q));
    EXPECT_EQ(c1.union_flags(q), c8.union_flags(q));
  }
}

TEST_F(RestorabilityFixture, Phase1ModelIsBuildConfigurationInvariant) {
  util::ThreadPool p1(1), p2(2), p8(8);
  const Phase1BuildStats base = build_phase1_model(*input_, prepared_,
                                                   params_, p1);
  ASSERT_GT(base.vars, 0);
  ASSERT_GT(base.rows, 0);
  ASSERT_NE(base.model_fingerprint, 0u);

  const RestorabilityCache shared(*input_, prepared_, p8);
  for (util::ThreadPool* pool : {&p1, &p2, &p8}) {
    for (const RestorabilityCache* cache :
         {static_cast<const RestorabilityCache*>(nullptr), &shared}) {
      const Phase1BuildStats stats =
          build_phase1_model(*input_, prepared_, params_, *pool, cache);
      EXPECT_EQ(stats.vars, base.vars);
      EXPECT_EQ(stats.rows, base.rows);
      EXPECT_EQ(stats.model_fingerprint, base.model_fingerprint)
          << "threads=" << pool->threads() << " shared_cache=" << (cache != nullptr);
    }
  }
}

TEST_F(RestorabilityFixture, Phase2ModelIsBuildConfigurationInvariant) {
  // Mixed winner vector: naive RWA plan everywhere, the first real candidate
  // for even scenarios that have one — covers both flag paths of the cache.
  std::vector<int> winners(
      static_cast<std::size_t>(input_->num_scenarios()), -1);
  for (int q = 0; q < input_->num_scenarios(); q += 2) {
    if (!prepared_.tickets[static_cast<std::size_t>(q)].tickets.empty()) {
      winners[static_cast<std::size_t>(q)] = 0;
    }
  }

  util::ThreadPool p1(1), p2(2), p8(8);
  const ModelBuildStats base =
      build_phase2_model(*input_, prepared_, winners, params_, p1);
  ASSERT_GT(base.vars, 0);
  ASSERT_GT(base.rows, 0);
  ASSERT_NE(base.model_fingerprint, 0u);

  const RestorabilityCache shared(*input_, prepared_, p8);
  for (util::ThreadPool* pool : {&p1, &p2, &p8}) {
    for (const RestorabilityCache* cache :
         {static_cast<const RestorabilityCache*>(nullptr), &shared}) {
      const ModelBuildStats stats =
          build_phase2_model(*input_, prepared_, winners, params_, *pool,
                             cache);
      EXPECT_EQ(stats.vars, base.vars);
      EXPECT_EQ(stats.rows, base.rows);
      EXPECT_EQ(stats.model_fingerprint, base.model_fingerprint)
          << "threads=" << pool->threads()
          << " shared_cache=" << (cache != nullptr);
    }
  }

  // A winner count that does not match the scenario count is a caller bug.
  std::vector<int> short_winners(winners.begin(), winners.end() - 1);
  EXPECT_THROW(
      build_phase2_model(*input_, prepared_, short_winners, params_, p1),
      std::logic_error);
}

TEST_F(RestorabilityFixture, SolveArrowIsBuildConfigurationInvariant) {
  util::ThreadPool p1(1), p8(8);
  const TeSolution before = solve_arrow(*input_, prepared_, params_, p1);
  ASSERT_TRUE(before.optimal);

  const RestorabilityCache shared(*input_, prepared_, p8);
  expect_identical(before, solve_arrow(*input_, prepared_, params_));
  expect_identical(before, solve_arrow(*input_, prepared_, params_, p8));
  expect_identical(before,
                   solve_arrow(*input_, prepared_, params_, p8, &shared));
}

TEST_F(RestorabilityFixture, SolveArrowNaiveIsBuildConfigurationInvariant) {
  util::ThreadPool p1(1), p8(8);
  const TeSolution before =
      solve_arrow_naive(*input_, prepared_, params_, p1);
  ASSERT_TRUE(before.optimal);
  const RestorabilityCache shared(*input_, prepared_);
  expect_identical(before, solve_arrow_naive(*input_, prepared_, params_));
  expect_identical(before,
                   solve_arrow_naive(*input_, prepared_, params_, p8));
  expect_identical(before,
                   solve_arrow_naive(*input_, prepared_, params_, &shared));
}

TEST(RestorabilitySmall, SolveArrowIlpIsBuildConfigurationInvariant) {
  // Tiny instance so the binary ILP (Table 9) finishes (same setup as
  // te_test's ArrowSmall).
  const topo::Network net = topo::build_testbed();
  util::Rng rng(4);
  traffic::TrafficParams tp;
  tp.num_matrices = 1;
  tp.min_share = 0.0;
  const auto ms = traffic::generate_traffic(net, tp, rng);
  std::vector<scenario::Scenario> scenarios{
      {{0}, 0.01}, {{1}, 0.01}, {{3}, 0.01}};
  TunnelParams tun;
  tun.tunnels_per_flow = 3;
  TeInput input(net, ms[0], scenarios, tun);
  input.scale_demands(max_satisfiable_scale(input));
  input.scale_demands(0.8);

  ArrowParams ap;
  ap.tickets.num_tickets = 4;
  const auto prepared = prepare_arrow(input, ap, rng);

  util::ThreadPool p1(1), p8(8);
  const TeSolution before = solve_arrow_ilp(input, prepared, ap, p1);
  ASSERT_TRUE(before.optimal);
  const RestorabilityCache shared(input, prepared);
  expect_identical(before, solve_arrow_ilp(input, prepared, ap));
  expect_identical(before, solve_arrow_ilp(input, prepared, ap, p8));
  expect_identical(before, solve_arrow_ilp(input, prepared, ap, &shared));
}

TEST(RestorabilitySmall, IlpModelIsBuildConfigurationInvariant) {
  // Same tiny instance as above; the fingerprint check needs no ILP solve,
  // only the built model, so the binary selectors and big-M rows of the
  // parallel generator are compared across thread counts and cache sharing
  // exactly.
  const topo::Network net = topo::build_testbed();
  util::Rng rng(4);
  traffic::TrafficParams tp;
  tp.num_matrices = 1;
  tp.min_share = 0.0;
  const auto ms = traffic::generate_traffic(net, tp, rng);
  std::vector<scenario::Scenario> scenarios{
      {{0}, 0.01}, {{1}, 0.01}, {{3}, 0.01}};
  TunnelParams tun;
  tun.tunnels_per_flow = 3;
  TeInput input(net, ms[0], scenarios, tun);
  input.scale_demands(max_satisfiable_scale(input));
  input.scale_demands(0.8);

  ArrowParams ap;
  ap.tickets.num_tickets = 4;
  const auto prepared = prepare_arrow(input, ap, rng);

  util::ThreadPool p1(1), p2(2), p8(8);
  const ModelBuildStats base = build_arrow_ilp_model(input, prepared, ap, p1);
  ASSERT_GT(base.vars, 0);
  ASSERT_GT(base.rows, 0);
  ASSERT_NE(base.model_fingerprint, 0u);

  const RestorabilityCache shared(input, prepared, p8);
  for (util::ThreadPool* pool : {&p1, &p2, &p8}) {
    for (const RestorabilityCache* cache :
         {static_cast<const RestorabilityCache*>(nullptr), &shared}) {
      const ModelBuildStats stats =
          build_arrow_ilp_model(input, prepared, ap, *pool, cache);
      EXPECT_EQ(stats.vars, base.vars);
      EXPECT_EQ(stats.rows, base.rows);
      EXPECT_EQ(stats.model_fingerprint, base.model_fingerprint)
          << "threads=" << pool->threads()
          << " shared_cache=" << (cache != nullptr);
    }
  }
}

}  // namespace
}  // namespace arrow::te
