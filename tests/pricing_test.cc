// Pricing-mode parity, presolve round-trips, and warm-retry accounting on
// TE-derived LPs.
//
// The corpus is captured with a ScopedSolveObserver during a real
// solve_arrow run (Phase I + Phase II LPs included), so every pricing mode
// and the presolve round-trip are exercised on the exact LPs the paper's
// pipeline produces, not synthetic toys. kDantzig is the oracle: it keeps
// no incremental state, so agreement with it validates the maintained
// reduced costs of kIncremental/kPartial and the Devex weights.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "sim/sweep.h"
#include "solver/lp.h"
#include "te/arrow.h"
#include "te/basic.h"
#include "topo/builders.h"
#include "traffic/traffic.h"
#include "util/parallel.h"

namespace arrow::solver {
namespace {

// Small TE instance whose solve_arrow run donates its LPs.
class PricingCorpus : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    if (corpus_ != nullptr) return;
    corpus_ = new std::vector<Lp>();
    const topo::Network net = topo::build_b4();
    util::Rng rng(77);
    traffic::TrafficParams tp;
    tp.num_matrices = 1;
    const auto ms = traffic::generate_traffic(net, tp, rng);
    scenario::ScenarioParams sp;
    sp.probability_cutoff = 0.002;
    auto set = scenario::generate_scenarios(net, sp, rng);
    const auto scenarios = scenario::remove_disconnecting(net, set.scenarios);
    te::TunnelParams tun;
    tun.tunnels_per_flow = 4;
    te::TeInput input(net, ms[0], scenarios, tun);
    input.scale_demands(te::max_satisfiable_scale(input));
    input.scale_demands(0.9);
    te::ArrowParams params;
    params.tickets.num_tickets = 3;
    const auto prepared = te::prepare_arrow(input, params, rng);
    {
      ScopedSolveObserver capture([](const Lp& lp, LpSolution& sol) {
        (void)sol;
        if (corpus_->size() < 8) corpus_->push_back(lp);
      });
      const auto sol = te::solve_arrow(input, prepared, params);
      ASSERT_TRUE(sol.optimal);
    }
    ASSERT_FALSE(corpus_->empty());
  }

  static std::vector<Lp>* corpus_;
};

std::vector<Lp>* PricingCorpus::corpus_ = nullptr;

TEST_F(PricingCorpus, AllPricingModesReachTheSameOptimum) {
  for (std::size_t i = 0; i < corpus_->size(); ++i) {
    const Lp& lp = (*corpus_)[i];
    SimplexOptions base;
    const LpSolution oracle = solve_lp(lp, [&] {
      SimplexOptions o = base;
      o.pricing = Pricing::kDantzig;
      return o;
    }());
    ASSERT_EQ(oracle.status, LpStatus::kOptimal) << "lp " << i;
    for (Pricing p : {Pricing::kDevex, Pricing::kIncremental,
                      Pricing::kPartial}) {
      SimplexOptions opt = base;
      opt.pricing = p;
      const LpSolution sol = solve_lp(lp, opt);
      ASSERT_EQ(sol.status, LpStatus::kOptimal)
          << "lp " << i << " pricing " << static_cast<int>(p);
      const double scale = 1.0 + std::abs(oracle.objective);
      EXPECT_LT(std::abs(sol.objective - oracle.objective), 1e-6 * scale)
          << "lp " << i << " pricing " << static_cast<int>(p);
      EXPECT_LT(primal_violation(lp, sol.x), 1e-6)
          << "lp " << i << " pricing " << static_cast<int>(p);
      // The returned basis must be a genuine vertex of the full-space LP.
      EXPECT_EQ(sol.basis.num_basic(), lp.a.rows)
          << "lp " << i << " pricing " << static_cast<int>(p);
    }
  }
}

TEST_F(PricingCorpus, PartialPricingDoesLessWorkThanDantzig) {
  // The candidate-list mode must not price more columns than the
  // full-recomputation oracle on the corpus in aggregate — that is its
  // reason to exist.
  long long dantzig = 0, partial = 0;
  for (const Lp& lp : *corpus_) {
    SimplexOptions opt;
    opt.pricing = Pricing::kDantzig;
    dantzig += solve_lp(lp, opt).pricing_candidates;
    opt.pricing = Pricing::kPartial;
    partial += solve_lp(lp, opt).pricing_candidates;
  }
  EXPECT_GT(dantzig, 0);
  EXPECT_LT(partial, dantzig);
}

TEST_F(PricingCorpus, PresolveRoundTripPreservesTheOptimum) {
  for (std::size_t i = 0; i < corpus_->size(); ++i) {
    const Lp& lp = (*corpus_)[i];
    SimplexOptions on, off;
    on.presolve = true;
    off.presolve = false;
    const LpSolution a = solve_lp(lp, on);
    const LpSolution b = solve_lp(lp, off);
    ASSERT_EQ(a.status, LpStatus::kOptimal) << "lp " << i;
    ASSERT_EQ(b.status, LpStatus::kOptimal) << "lp " << i;
    const double scale = 1.0 + std::abs(b.objective);
    EXPECT_LT(std::abs(a.objective - b.objective), 1e-7 * scale) << "lp " << i;
    // Postsolve must return full-space artifacts regardless of reductions.
    EXPECT_EQ(static_cast<int>(a.x.size()), lp.a.cols) << "lp " << i;
    EXPECT_EQ(static_cast<int>(a.dual.size()), lp.a.rows) << "lp " << i;
    EXPECT_EQ(static_cast<int>(a.reduced_cost.size()), lp.a.cols)
        << "lp " << i;
    EXPECT_EQ(a.basis.num_basic(), lp.a.rows) << "lp " << i;
    EXPECT_LT(primal_violation(lp, a.x), 1e-6) << "lp " << i;
  }
}

// Hand-built computational-form LP: structural columns first, one identity
// slack per row appended last (the invariant Model::build_lp guarantees and
// presolve_lp checks for).
Lp single_row_lp(double x_lb, double x_ub, double cost, double rhs) {
  Lp lp;
  lp.a.rows = 1;
  lp.a.cols = 2;
  lp.a.col_start = {0, 1, 2};
  lp.a.row_index = {0, 0};
  lp.a.value = {1.0, 1.0};
  lp.cost = {cost, 0.0};
  lp.lower = {x_lb, 0.0};
  lp.upper = {x_ub, kInf};
  lp.rhs = {rhs};
  return lp;
}

TEST(Presolve, AllRowsEliminatedStillYieldsFullSpaceSolution) {
  // min -x, x in [0,5], x + s = 10 with s >= 0 (i.e. x <= 10, redundant).
  // The singleton row is dropped and the then-empty column is parked at its
  // cost-preferred bound: the whole LP dissolves in presolve and postsolve
  // must still reconstruct x, duals, reduced costs and a valid basis.
  const Lp lp = single_row_lp(0.0, 5.0, -1.0, 10.0);
  SimplexOptions opt;
  opt.presolve = true;
  const LpSolution sol = solve_lp(lp, opt);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_DOUBLE_EQ(sol.objective, -5.0);
  ASSERT_EQ(sol.x.size(), 2u);
  EXPECT_DOUBLE_EQ(sol.x[0], 5.0);
  EXPECT_DOUBLE_EQ(sol.x[1], 5.0);  // slack absorbs the remainder
  ASSERT_EQ(sol.dual.size(), 1u);
  ASSERT_EQ(sol.reduced_cost.size(), 2u);
  EXPECT_EQ(sol.basis.num_basic(), 1);
  EXPECT_LT(primal_violation(lp, sol.x), 1e-9);
  EXPECT_EQ(sol.presolve_rows_removed, 1);
  EXPECT_GT(sol.presolve_cols_removed, 0);
}

TEST(Presolve, DetectsInfeasibilityFromImpliedBounds) {
  // x in [0,10] but x + s = -1 with s >= 0 forces x <= -1: infeasible, and
  // the singleton-row bound tightening must catch it before any pivot.
  const Lp lp = single_row_lp(0.0, 10.0, 1.0, -1.0);
  for (bool presolve : {true, false}) {
    SimplexOptions opt;
    opt.presolve = presolve;
    const LpSolution sol = solve_lp(lp, opt);
    EXPECT_EQ(sol.status, LpStatus::kInfeasible) << "presolve=" << presolve;
  }
  SimplexOptions opt;
  opt.presolve = true;
  EXPECT_EQ(solve_lp(lp, opt).iterations, 0);
}

TEST(WarmRetry, FailedWarmAttemptSecondsAreSummedIntoTheRetry) {
  // A warm-started solve that collapses with numerical error is retried
  // cold; the retry must ADD the failed attempt's phase clocks (1.0 s each,
  // injected) instead of overwriting them.
  const Lp lp = single_row_lp(0.0, 5.0, -1.0, 3.0);
  SimplexOptions opt;
  opt.presolve = false;
  const LpSolution cold = solve_lp(lp, opt);
  ASSERT_EQ(cold.status, LpStatus::kOptimal);

  opt.fail_warm_start_for_test = true;
  const LpSolution retried = solve_lp(lp, opt, &cold.basis);
  EXPECT_EQ(retried.status, LpStatus::kOptimal);
  EXPECT_DOUBLE_EQ(retried.objective, cold.objective);
  EXPECT_GE(retried.phase1_seconds, 1.0);
  EXPECT_GE(retried.phase2_seconds, 1.0);
  // The retry ran cold, so the result must not claim a warm start.
  EXPECT_FALSE(retried.warm_started);
}

TEST(PresolveSweep, SweepResultsAreIdenticalWithPresolveOnAndOff) {
  // The acceptance bar for default-on presolve: the TE pipeline's sweep
  // output must be byte-identical either way — not merely close — so the
  // reductions can never move a published curve.
  const topo::Network net = topo::build_testbed();
  util::Rng rng(11);
  traffic::TrafficParams tp;
  tp.num_matrices = 2;
  tp.min_share = 0.0;
  const auto matrices = traffic::generate_traffic(net, tp, rng);
  scenario::ScenarioParams sp;
  sp.probability_cutoff = 0.001;
  auto set = scenario::generate_scenarios(net, sp, rng);
  const auto scenarios = scenario::remove_disconnecting(net, set.scenarios);

  sim::SweepParams params;
  params.scales = {1.0, 2.0, 3.0};
  params.run_ffc1 = false;
  params.run_ffc2 = false;
  params.run_teavar = false;
  params.tunnels.tunnels_per_flow = 3;
  params.arrow.tickets.num_tickets = 3;

  // A 1-thread pool executes inline on the caller, so the thread-local
  // ScopedSimplexOverride below reaches every solve in the sweep. (The sweep
  // itself is bit-identical at any thread count; 1 thread loses nothing.)
  util::ThreadPool pool(1);
  auto run = [&](bool presolve) {
    SimplexOptions opt;
    opt.presolve = presolve;
    ScopedSimplexOverride guard(opt);
    util::Rng sweep_rng(123);  // same seed both runs
    return sim::run_sweep(net, matrices, scenarios, params, sweep_rng, pool);
  };
  const sim::SweepResult on = run(true);
  const sim::SweepResult off = run(false);

  // Guard against a vacuous pass: the sweep must have actually run schemes
  // over the scale grid.
  ASSERT_FALSE(on.schemes.empty());
  ASSERT_FALSE(on.availability.empty());
  EXPECT_EQ(on.scales.size(), params.scales.size());

  EXPECT_EQ(on.total_solve_failures(), 0);
  EXPECT_EQ(off.total_solve_failures(), 0);
  EXPECT_EQ(on.schemes, off.schemes);
  EXPECT_EQ(on.availability, off.availability);  // exact FP equality
  EXPECT_EQ(on.throughput, off.throughput);
  EXPECT_EQ(on.solve_failures, off.solve_failures);
}

}  // namespace
}  // namespace arrow::solver
