// Tests for the plain-text network / traffic serialization.
#include <sstream>

#include <gtest/gtest.h>

#include "topo/builders.h"
#include "topo/io.h"

namespace arrow::topo {
namespace {

void expect_equal_networks(const Network& a, const Network& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.num_sites, b.num_sites);
  EXPECT_EQ(a.optical.num_roadms, b.optical.num_roadms);
  ASSERT_EQ(a.optical.fibers.size(), b.optical.fibers.size());
  for (std::size_t i = 0; i < a.optical.fibers.size(); ++i) {
    EXPECT_EQ(a.optical.fibers[i].a, b.optical.fibers[i].a);
    EXPECT_EQ(a.optical.fibers[i].b, b.optical.fibers[i].b);
    EXPECT_DOUBLE_EQ(a.optical.fibers[i].length_km,
                     b.optical.fibers[i].length_km);
    EXPECT_EQ(a.optical.fibers[i].slots, b.optical.fibers[i].slots);
  }
  ASSERT_EQ(a.ip_links.size(), b.ip_links.size());
  for (std::size_t i = 0; i < a.ip_links.size(); ++i) {
    EXPECT_EQ(a.ip_links[i].src, b.ip_links[i].src);
    EXPECT_EQ(a.ip_links[i].dst, b.ip_links[i].dst);
    ASSERT_EQ(a.ip_links[i].waves.size(), b.ip_links[i].waves.size());
    for (std::size_t w = 0; w < a.ip_links[i].waves.size(); ++w) {
      EXPECT_EQ(a.ip_links[i].waves[w].slot, b.ip_links[i].waves[w].slot);
      EXPECT_DOUBLE_EQ(a.ip_links[i].waves[w].gbps,
                       b.ip_links[i].waves[w].gbps);
      EXPECT_EQ(a.ip_links[i].waves[w].fiber_path,
                b.ip_links[i].waves[w].fiber_path);
    }
  }
}

class IoRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(IoRoundTrip, NetworkSurvivesSaveLoad) {
  const std::string which = GetParam();
  const Network original = which == "b4"        ? build_b4()
                           : which == "ibm"     ? build_ibm()
                           : which == "testbed" ? build_testbed()
                                                : build_fbsynth();
  std::stringstream ss;
  save_network(original, ss);
  const Network reloaded = load_network(ss);
  expect_equal_networks(original, reloaded);
}

INSTANTIATE_TEST_SUITE_P(Topologies, IoRoundTrip,
                         ::testing::Values("b4", "ibm", "testbed", "fbsynth"));

TEST(Io, TrafficRoundTrip) {
  traffic::TrafficMatrix tm;
  tm.demands = {{0, 1, 12.5}, {3, 2, 900.0}};
  std::stringstream ss;
  save_traffic(tm, ss);
  const auto reloaded = load_traffic(ss);
  ASSERT_EQ(reloaded.demands.size(), 2u);
  EXPECT_EQ(reloaded.demands[1].src, 3);
  EXPECT_DOUBLE_EQ(reloaded.demands[1].gbps, 900.0);
}

TEST(Io, RejectsMissingHeader) {
  std::stringstream ss("fiber 0 0 1 100 96\n");
  EXPECT_THROW(load_network(ss), std::logic_error);
}

TEST(Io, RejectsUnknownRecord) {
  std::stringstream ss("network x sites 2 roadms 2\nbogus 1 2 3\n");
  EXPECT_THROW(load_network(ss), std::logic_error);
}

TEST(Io, RejectsWaveOnUnknownFiber) {
  std::stringstream ss(
      "network x sites 2 roadms 2\n"
      "fiber 0 0 1 100 96\n"
      "iplink 0 0 1\n"
      "wave 0 0 100 7\n");
  EXPECT_THROW(load_network(ss), std::logic_error);
}

TEST(Io, RejectsNonConsecutiveFiberIds) {
  std::stringstream ss(
      "network x sites 2 roadms 2\n"
      "fiber 3 0 1 100 96\n");
  EXPECT_THROW(load_network(ss), std::logic_error);
}

TEST(Io, ValidatesModelInvariantsOnLoad) {
  // Two waves on the same (fiber, slot): load_network must refuse.
  std::stringstream ss(
      "network x sites 2 roadms 2\n"
      "fiber 0 0 1 100 96\n"
      "iplink 0 0 1\n"
      "wave 0 5 100 0\n"
      "wave 0 5 100 0\n");
  EXPECT_THROW(load_network(ss), std::logic_error);
}

TEST(Io, IgnoresCommentsAndBlankLines) {
  std::stringstream ss(
      "# hello\n"
      "\n"
      "network tiny sites 2 roadms 2\n"
      "# a fiber\n"
      "fiber 0 0 1 250.5 48\n"
      "iplink 0 0 1\n"
      "wave 0 0 200 0\n");
  const Network net = load_network(ss);
  EXPECT_EQ(net.name, "tiny");
  EXPECT_EQ(net.optical.fibers[0].slots, 48);
  EXPECT_DOUBLE_EQ(net.ip_links[0].capacity_gbps(), 200.0);
  EXPECT_DOUBLE_EQ(net.ip_links[0].waves[0].path_km, 250.5);
}

}  // namespace
}  // namespace arrow::topo
