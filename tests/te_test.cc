// Tests for the TE family: common input construction, ECMP, the
// max-throughput LP, FFC-k, TeaVaR, and ARROW's two-phase formulation
// (including the exact binary-ILP cross-check on small instances).
#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "sim/availability.h"
#include "te/arrow.h"
#include "te/basic.h"
#include "te/ffc.h"
#include "te/joint.h"
#include "te/teavar.h"
#include "topo/builders.h"
#include "traffic/traffic.h"

namespace arrow::te {
namespace {

// Shared small-but-real setup: B4, one matrix, probabilistic scenarios.
class TeFixture : public ::testing::Test {
 protected:
  TeFixture() : net_(topo::build_b4()) {
    util::Rng rng(2021);
    traffic::TrafficParams tp;
    tp.num_matrices = 1;
    matrices_ = traffic::generate_traffic(net_, tp, rng);
    scenario::ScenarioParams sp;
    sp.probability_cutoff = 0.001;
    auto set = scenario::generate_scenarios(net_, sp, rng);
    scenarios_ = scenario::remove_disconnecting(net_, set.scenarios);
    TunnelParams tun;
    tun.tunnels_per_flow = 6;
    input_ = std::make_unique<TeInput>(net_, matrices_[0], scenarios_, tun);
    calibration_ = max_satisfiable_scale(*input_);
    input_->scale_demands(calibration_);
  }

  topo::Network net_;
  std::vector<traffic::TrafficMatrix> matrices_;
  std::vector<scenario::Scenario> scenarios_;
  std::unique_ptr<TeInput> input_;
  double calibration_ = 0.0;
};

TEST_F(TeFixture, InputCachesMatchDirectComputation) {
  const TeInput& in = *input_;
  ASSERT_GT(in.num_flows(), 50);
  ASSERT_GT(in.num_scenarios(), 10);
  for (int q = 0; q < in.num_scenarios(); ++q) {
    const auto failed = net_.failed_ip_links(in.scenarios()[static_cast<std::size_t>(q)].cuts);
    EXPECT_EQ(failed, in.failed_links(q));
    std::vector<char> down(net_.ip_links.size(), 0);
    for (auto e : failed) down[static_cast<std::size_t>(e)] = 1;
    for (int f = 0; f < std::min(10, in.num_flows()); ++f) {
      for (std::size_t ti = 0; ti < in.tunnels()[static_cast<std::size_t>(f)].size(); ++ti) {
        bool alive = true;
        for (int e : in.tunnels()[static_cast<std::size_t>(f)][ti].links) {
          if (down[static_cast<std::size_t>(e)]) alive = false;
        }
        EXPECT_EQ(alive, in.tunnel_alive(f, static_cast<int>(ti), q));
      }
    }
  }
}

TEST_F(TeFixture, EveryFlowKeepsAResidualTunnelPerScenario) {
  // The §6 tunnel-selection guarantee (after the top-up pass).
  const TeInput& in = *input_;
  for (int q = 0; q < in.num_scenarios(); ++q) {
    for (int f = 0; f < in.num_flows(); ++f) {
      bool any = false;
      for (std::size_t ti = 0; ti < in.tunnels()[static_cast<std::size_t>(f)].size(); ++ti) {
        any |= in.tunnel_alive(f, static_cast<int>(ti), q);
      }
      EXPECT_TRUE(any) << "flow " << f << " scenario " << q;
    }
  }
}

TEST_F(TeFixture, TunnelsAreLooplessPathsBetweenEndpoints) {
  const TeInput& in = *input_;
  for (int f = 0; f < in.num_flows(); ++f) {
    const auto& flow = in.flows()[static_cast<std::size_t>(f)];
    for (const auto& t : in.tunnels()[static_cast<std::size_t>(f)]) {
      int at = flow.src;
      std::set<int> visited{at};
      for (int e : t.links) {
        const auto& link = net_.ip_links[static_cast<std::size_t>(e)];
        ASSERT_TRUE(link.src == at || link.dst == at);
        at = link.src == at ? link.dst : link.src;
        EXPECT_TRUE(visited.insert(at).second) << "tunnel revisits a site";
      }
      EXPECT_EQ(at, flow.dst);
    }
  }
}

TEST_F(TeFixture, CalibrationMakesScaleOneExactlySatisfiable) {
  EXPECT_GT(calibration_, 0.0);
  const TeSolution sol = solve_max_throughput(*input_);
  ASSERT_TRUE(sol.optimal);
  EXPECT_NEAR(sol.total_admitted() / input_->total_demand(), 1.0, 1e-5);
  // At 1.5x it can no longer fully satisfy.
  TeInput stressed = *input_;
  stressed.scale_demands(1.5);
  const TeSolution s2 = solve_max_throughput(stressed);
  ASSERT_TRUE(s2.optimal);
  EXPECT_LT(s2.total_admitted() / stressed.total_demand(), 0.999);
}

TEST_F(TeFixture, EcmpSplitsEqually) {
  const TeSolution sol = solve_ecmp(*input_);
  ASSERT_TRUE(sol.optimal);
  for (int f = 0; f < input_->num_flows(); ++f) {
    const auto& alloc = sol.alloc[static_cast<std::size_t>(f)];
    const double d = input_->flows()[static_cast<std::size_t>(f)].demand_gbps;
    for (double a : alloc) {
      EXPECT_NEAR(a, d / static_cast<double>(alloc.size()), 1e-9);
    }
  }
  const auto ratios = sol.splitting_ratios();
  for (const auto& r : ratios) {
    double sum = 0.0;
    for (double x : r) sum += x;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST_F(TeFixture, LpSolutionsRespectLinkCapacities) {
  input_->scale_demands(0.8);
  for (const TeSolution& sol :
       {solve_max_throughput(*input_), solve_ffc(*input_, FfcParams{1, 0}),
        solve_teavar(*input_, TeaVarParams{})}) {
    ASSERT_TRUE(sol.optimal) << sol.scheme;
    std::vector<double> load(net_.ip_links.size(), 0.0);
    for (int f = 0; f < input_->num_flows(); ++f) {
      for (std::size_t ti = 0; ti < sol.alloc[static_cast<std::size_t>(f)].size(); ++ti) {
        for (int e : input_->tunnels()[static_cast<std::size_t>(f)][ti].links) {
          load[static_cast<std::size_t>(e)] +=
              sol.alloc[static_cast<std::size_t>(f)][ti];
        }
      }
    }
    for (std::size_t e = 0; e < load.size(); ++e) {
      EXPECT_LE(load[e], net_.ip_links[e].capacity_gbps() + 1e-5)
          << sol.scheme;
    }
  }
}

TEST_F(TeFixture, FfcOneGuaranteesZeroLossUnderSingleCuts) {
  input_->scale_demands(0.7);
  const TeSolution sol = solve_ffc(*input_, FfcParams{1, 0});
  ASSERT_TRUE(sol.optimal);
  // For every single-cut scenario, admitted traffic survives on residual
  // tunnels: satisfaction >= total_admitted / total_demand.
  const double admitted_fraction =
      sol.total_admitted() / input_->total_demand();
  for (int q = 0; q < input_->num_scenarios(); ++q) {
    if (input_->scenarios()[static_cast<std::size_t>(q)].cuts.size() != 1) {
      continue;
    }
    const double sat = sim::scenario_satisfaction(*input_, sol, q);
    EXPECT_GE(sat, admitted_fraction - 1e-5) << "scenario " << q;
  }
}

TEST_F(TeFixture, FfcHierarchy) {
  input_->scale_demands(0.8);
  const double mt = solve_max_throughput(*input_).total_admitted();
  const double f1 = solve_ffc(*input_, FfcParams{1, 0}).total_admitted();
  const double f2 = solve_ffc(*input_, FfcParams{2, 0}).total_admitted();
  EXPECT_LE(f1, mt + 1e-5);
  EXPECT_LE(f2, f1 + 1e-5);  // protecting more scenarios costs throughput
}

TEST_F(TeFixture, TeaVarRespectsHeadroomCap) {
  TeaVarParams p;
  p.allocation_headroom = 1.6;
  const TeSolution sol = solve_teavar(*input_, p);
  ASSERT_TRUE(sol.optimal);
  for (int f = 0; f < input_->num_flows(); ++f) {
    double total = 0.0;
    for (double a : sol.alloc[static_cast<std::size_t>(f)]) total += a;
    EXPECT_LE(total,
              1.6 * input_->flows()[static_cast<std::size_t>(f)].demand_gbps +
                  1e-5);
  }
}

TEST_F(TeFixture, TeaVarServesDemandAtLowLoad) {
  input_->scale_demands(0.4);
  const TeSolution sol = solve_teavar(*input_, TeaVarParams{});
  ASSERT_TRUE(sol.optimal);
  EXPECT_GT(sol.total_admitted() / input_->total_demand(), 0.95);
}

class ArrowFixture : public TeFixture {
 protected:
  ArrowFixture() {
    params_.tickets.num_tickets = 8;
    util::Rng rng(99);
    prepared_ = prepare_arrow(*input_, params_, rng);
  }
  ArrowParams params_;
  ArrowPrepared prepared_;
};

TEST_F(ArrowFixture, PreparedCoversEveryScenario) {
  ASSERT_EQ(prepared_.rwa.size(),
            static_cast<std::size_t>(input_->num_scenarios()));
  ASSERT_EQ(prepared_.tickets.size(), prepared_.rwa.size());
  for (std::size_t q = 0; q < prepared_.tickets.size(); ++q) {
    // Ticket link lists match the scenario's failed links.
    EXPECT_EQ(prepared_.tickets[q].failed_links.size(),
              prepared_.rwa[q].links.size());
  }
}

TEST_F(ArrowFixture, SolutionSatisfiesPhase2Constraints) {
  input_->scale_demands(0.6);
  const TeSolution sol = solve_arrow(*input_, prepared_, params_);
  ASSERT_TRUE(sol.optimal);
  // (10)/(11): per scenario, admitted traffic is covered and restored links
  // are not over-filled.
  for (int q = 0; q < input_->num_scenarios(); ++q) {
    const auto& restored = sol.restored[static_cast<std::size_t>(q)];
    // (11): load of surviving-by-restoration tunnels fits r*.
    std::map<int, double> load;
    for (int f = 0; f < input_->num_flows(); ++f) {
      for (std::size_t ti = 0; ti < sol.alloc[static_cast<std::size_t>(f)].size(); ++ti) {
        if (input_->tunnel_alive(f, static_cast<int>(ti), q)) continue;
        // Dead tunnel: carries only if every failed link restored.
        bool carries = true;
        for (int e : input_->tunnels()[static_cast<std::size_t>(f)][ti].links) {
          const auto it = restored.find(e);
          if (it != restored.end() && it->second <= 1e-9) carries = false;
          bool failed = false;
          for (int fe : input_->failed_links(q)) failed |= fe == e;
          if (failed && it == restored.end()) carries = false;
        }
        if (!carries) continue;
        for (int e : input_->tunnels()[static_cast<std::size_t>(f)][ti].links) {
          if (restored.count(e)) {
            load[e] += sol.alloc[static_cast<std::size_t>(f)][ti];
          }
        }
      }
    }
    for (const auto& [e, l] : load) {
      const auto it = restored.find(e);
      ASSERT_NE(it, restored.end());
      EXPECT_LE(l, it->second + 1e-4) << "scenario " << q << " link " << e;
    }
  }
}

TEST_F(ArrowFixture, RestorationLiftsThroughputOverFfcStyleNoRestoration) {
  // ARROW with restoration vs the same scenario set with zero restoration
  // (an FFC over the probabilistic set): restoration can only help.
  input_->scale_demands(0.6);
  const TeSolution with = solve_arrow(*input_, prepared_, params_);
  // Zero-restoration prepared: empty RWA results.
  ArrowPrepared none;
  none.rwa.resize(prepared_.rwa.size());
  none.tickets.resize(prepared_.tickets.size());
  for (std::size_t q = 0; q < none.tickets.size(); ++q) {
    none.tickets[q].failed_links = prepared_.tickets[q].failed_links;
    ticket::LotteryTicket zero;
    zero.waves.assign(none.tickets[q].failed_links.size(), 0);
    zero.gbps.assign(none.tickets[q].failed_links.size(), 0.0);
    zero.path_waves.resize(none.tickets[q].failed_links.size());
    none.tickets[q].tickets.push_back(zero);
    // naive_ticket(empty rwa) would drop links; keep rwa aligned:
    none.rwa[q].links.resize(prepared_.rwa[q].links.size());
    for (std::size_t li = 0; li < none.rwa[q].links.size(); ++li) {
      none.rwa[q].links[li].link = prepared_.rwa[q].links[li].link;
      none.rwa[q].links[li].lost_waves = prepared_.rwa[q].links[li].lost_waves;
      none.rwa[q].links[li].original_gbps =
          prepared_.rwa[q].links[li].original_gbps;
    }
  }
  const TeSolution without = solve_arrow(*input_, none, params_);
  ASSERT_TRUE(with.optimal);
  ASSERT_TRUE(without.optimal);
  EXPECT_GE(with.total_admitted(), without.total_admitted() - 1e-4);
}

TEST_F(ArrowFixture, WinnersAreValidTicketIndices) {
  const TeSolution sol = solve_arrow(*input_, prepared_, params_);
  ASSERT_TRUE(sol.optimal);
  ASSERT_EQ(sol.winner.size(),
            static_cast<std::size_t>(input_->num_scenarios()));
  for (int q = 0; q < input_->num_scenarios(); ++q) {
    const int z = sol.winner[static_cast<std::size_t>(q)];
    EXPECT_GE(z, -1);
    EXPECT_LT(z, static_cast<int>(
                     prepared_.tickets[static_cast<std::size_t>(q)].tickets.size()));
  }
}

TEST(ArrowSmall, IlpMatchesOrBeatsTwoPhase) {
  // Tiny instance so the binary ILP (Table 9) finishes: testbed network.
  const topo::Network net = topo::build_testbed();
  util::Rng rng(4);
  traffic::TrafficParams tp;
  tp.num_matrices = 1;
  tp.min_share = 0.0;
  const auto ms = traffic::generate_traffic(net, tp, rng);
  // Single-cut scenarios 0,1,3 (fiber 2 disconnects the IP layer).
  std::vector<scenario::Scenario> scenarios{
      {{0}, 0.01}, {{1}, 0.01}, {{3}, 0.01}};
  TunnelParams tun;
  tun.tunnels_per_flow = 3;
  TeInput input(net, ms[0], scenarios, tun);
  input.scale_demands(max_satisfiable_scale(input));
  input.scale_demands(0.8);

  ArrowParams ap;
  ap.tickets.num_tickets = 4;
  const auto prepared = prepare_arrow(input, ap, rng);
  const TeSolution lp2 = solve_arrow(input, prepared, ap);
  const TeSolution ilp = solve_arrow_ilp(input, prepared, ap);
  ASSERT_TRUE(lp2.optimal);
  ASSERT_TRUE(ilp.optimal);
  // The ILP optimizes ticket choice jointly: it can only do better.
  EXPECT_GE(ilp.total_admitted(), lp2.total_admitted() - 1e-4);
}

TEST_F(TeFixture, JointFormulationSizeIsAstronomical) {
  const JointFormulationSize size = joint_formulation_size(*input_, 4);
  EXPECT_GT(size.binary_vars, 1000000);  // Table 8's "millions" scale
  EXPECT_GT(size.constraints, 1000000);
  EXPECT_GT(size.continuous_vars, 100);
  // More surrogate paths => strictly more variables.
  const JointFormulationSize bigger = joint_formulation_size(*input_, 8);
  EXPECT_GT(bigger.binary_vars, size.binary_vars);
}

TEST_F(TeFixture, SplittingRatiosAreADistribution) {
  const TeSolution sol = solve_ffc(*input_, FfcParams{1, 0});
  ASSERT_TRUE(sol.optimal);
  for (const auto& r : sol.splitting_ratios()) {
    double sum = 0.0;
    for (double x : r) {
      EXPECT_GE(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
}


TEST_F(TeFixture, CoverDoubleCutsGuaranteesResidualTunnels) {
  TunnelParams tun;
  tun.tunnels_per_flow = 4;
  tun.cover_double_cuts = true;
  TeInput covered(net_, matrices_[0], scenarios_, tun);
  const auto nf = static_cast<int>(net_.optical.fibers.size());
  // For every double cut that keeps the IP layer connected, every flow must
  // retain at least one alive tunnel.
  util::Rng rng(31);
  int checked = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const int i = rng.uniform_int(0, nf - 1);
    const int j = rng.uniform_int(0, nf - 1);
    if (i == j) continue;
    std::vector<scenario::Scenario> probe{{{i, j}, 0.1}};
    if (scenario::remove_disconnecting(net_, std::move(probe)).empty()) {
      continue;  // partitions the IP layer: no tunnel set can help
    }
    const auto failed = net_.failed_ip_links({i, j});
    std::vector<char> down(net_.ip_links.size(), 0);
    for (auto e : failed) down[static_cast<std::size_t>(e)] = 1;
    for (int f = 0; f < covered.num_flows(); ++f) {
      bool any = false;
      for (const auto& t : covered.tunnels()[static_cast<std::size_t>(f)]) {
        bool alive = true;
        for (int e : t.links) {
          if (down[static_cast<std::size_t>(e)]) alive = false;
        }
        if (alive) {
          any = true;
          break;
        }
      }
      EXPECT_TRUE(any) << "flow " << f << " cut {" << i << "," << j << "}";
    }
    ++checked;
  }
  EXPECT_GT(checked, 5);
}

TEST_F(TeFixture, FfcDoubleScenarioCapLimitsRows) {
  input_->scale_demands(0.6);
  const TeSolution uncapped = solve_ffc(*input_, FfcParams{2, 0});
  const TeSolution capped = solve_ffc(*input_, FfcParams{2, 10});
  ASSERT_TRUE(uncapped.optimal);
  ASSERT_TRUE(capped.optimal);
  // Fewer protected combinations can only admit more traffic.
  EXPECT_GE(capped.total_admitted(), uncapped.total_admitted() - 1e-5);
}

TEST_F(TeFixture, TeaVarObjectiveIsTheCvarOfLosses) {
  input_->scale_demands(0.8);
  TeaVarParams p;
  p.allocation_penalty = 0.0;  // pure CVaR objective for this check
  const TeSolution sol = solve_teavar(*input_, p);
  ASSERT_TRUE(sol.optimal);
  // Reconstruct: per-scenario demand-weighted loss from the allocations.
  const double total_demand = input_->total_demand();
  std::vector<std::pair<double, double>> loss_prob;  // (loss, probability)
  double mass = 0.0;
  const auto loss_for = [&](int q) {
    double lost = 0.0;
    for (int f = 0; f < input_->num_flows(); ++f) {
      const double d = input_->flows()[static_cast<std::size_t>(f)].demand_gbps;
      double got = 0.0;
      for (std::size_t ti = 0;
           ti < sol.alloc[static_cast<std::size_t>(f)].size(); ++ti) {
        if (q < 0 || input_->tunnel_alive(f, static_cast<int>(ti), q)) {
          got += sol.alloc[static_cast<std::size_t>(f)][ti];
        }
      }
      lost += std::max(0.0, d - got);
    }
    return lost / total_demand;
  };
  for (int q = 0; q < input_->num_scenarios(); ++q) {
    const double pr =
        input_->scenarios()[static_cast<std::size_t>(q)].probability;
    loss_prob.push_back({loss_for(q), pr});
    mass += pr;
  }
  loss_prob.push_back({loss_for(-1), std::max(0.0, 1.0 - mass)});
  // CVaR_beta via the Rockafellar-Uryasev program evaluated at the optimum:
  // objective = min_alpha alpha + 1/(1-beta) sum p max(0, loss - alpha).
  // Evaluate the RHS on a fine alpha grid; the LP objective can never beat
  // the true minimum and should match it closely.
  double best = 1e18;
  for (int i = 0; i <= 1000; ++i) {
    const double alpha = static_cast<double>(i) / 1000.0;
    double v = alpha;
    for (const auto& [l, pr] : loss_prob) {
      v += pr * std::max(0.0, l - alpha) / (1.0 - p.beta);
    }
    best = std::min(best, v);
  }
  EXPECT_NEAR(sol.objective, best, 1e-3 + 0.01 * best);
}

TEST_F(ArrowFixture, RestoredMapMatchesWinnerTicket) {
  const TeSolution sol = solve_arrow(*input_, prepared_, params_);
  ASSERT_TRUE(sol.optimal);
  for (int q = 0; q < input_->num_scenarios(); ++q) {
    const auto& ts = prepared_.tickets[static_cast<std::size_t>(q)];
    const int w = sol.winner[static_cast<std::size_t>(q)];
    if (w < 0) continue;  // naive fallback checked elsewhere
    const auto& ticket = ts.tickets[static_cast<std::size_t>(w)];
    for (std::size_t li = 0; li < ts.failed_links.size(); ++li) {
      const auto it =
          sol.restored[static_cast<std::size_t>(q)].find(ts.failed_links[li]);
      ASSERT_NE(it, sol.restored[static_cast<std::size_t>(q)].end());
      EXPECT_NEAR(it->second, ticket.gbps[li], 1e-9);
    }
  }
}

}  // namespace
}  // namespace arrow::te
