// Deadline / backoff suite (ctest label: chaos).
//
// The contract under test: a wall-clock budget on a solve is enforced at the
// simplex level (LpStatus::kTimedOut), the timed-out result still carries the
// best basis reached (so a retry warm-starts instead of restarting), ambient
// ScopedSolveDeadline guards compose by taking the earliest expiry, and the
// controller's degradation ladder turns timeouts into lower-rung plans — a
// shrinking budget degrades the answer, never the control loop. Everything
// runs under util::ScopedFakeClock, so "time runs out" is a deterministic
// count of clock reads, not a wall-clock race.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "controller/controller.h"
#include "scenario/scenario.h"
#include "solver/model.h"
#include "te/arrow.h"
#include "te/basic.h"
#include "topo/builders.h"
#include "traffic/traffic.h"
#include "util/clock.h"
#include "util/deadline.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace arrow {
namespace {

// --- Deadline / Backoff value semantics ------------------------------------

TEST(Deadline, UnsetNeverExpires) {
  util::ScopedFakeClock clock(1000.0);
  util::Deadline d;
  EXPECT_FALSE(d.is_set());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining_s(), std::numeric_limits<double>::infinity());
  clock.advance(1e12);
  EXPECT_FALSE(d.expired());
}

TEST(Deadline, AfterAtAndExpiry) {
  util::ScopedFakeClock clock(100.0);
  const util::Deadline d = util::Deadline::after(5.0);
  EXPECT_TRUE(d.is_set());
  EXPECT_DOUBLE_EQ(d.expiry_s(), 105.0);
  EXPECT_FALSE(d.expired());
  EXPECT_DOUBLE_EQ(d.remaining_s(), 5.0);
  clock.set(105.0);
  EXPECT_TRUE(d.expired());
  EXPECT_DOUBLE_EQ(d.remaining_s(), 0.0);
  // after(<= 0) is born expired — the ladder's "budget already gone" case.
  EXPECT_TRUE(util::Deadline::after(-1.0).expired());
}

TEST(Deadline, EarlierTakesTheMinAndUnsetLoses) {
  util::ScopedFakeClock clock(0.0);
  const util::Deadline a = util::Deadline::at(5.0);
  const util::Deadline b = util::Deadline::at(8.0);
  const util::Deadline unset;
  EXPECT_DOUBLE_EQ(util::Deadline::earlier(a, b).expiry_s(), 5.0);
  EXPECT_DOUBLE_EQ(util::Deadline::earlier(b, a).expiry_s(), 5.0);
  EXPECT_DOUBLE_EQ(util::Deadline::earlier(a, unset).expiry_s(), 5.0);
  EXPECT_DOUBLE_EQ(util::Deadline::earlier(unset, a).expiry_s(), 5.0);
  EXPECT_FALSE(util::Deadline::earlier(unset, unset).is_set());
}

TEST(Backoff, DeterministicGrowingCappedJittered) {
  util::BackoffParams p;
  p.base_s = 0.004;
  p.max_s = 0.010;
  p.multiplier = 2.0;
  p.jitter = 0.5;
  util::Backoff a(p, 77), b(p, 77);
  // Nominal (pre-jitter) schedule: 4ms, 8ms, then capped at 10ms forever.
  const double nominal[] = {0.004, 0.008, 0.010, 0.010, 0.010};
  for (double n : nominal) {
    const double da = a.next_s();
    EXPECT_DOUBLE_EQ(da, b.next_s());  // same seed => same delays
    EXPECT_GE(da, (1.0 - p.jitter) * n - 1e-12);
    EXPECT_LE(da, n + 1e-12);
  }
  EXPECT_EQ(a.attempts(), 5);
}

TEST(Backoff, SleepReturnsZeroPastTheDeadline) {
  util::ScopedFakeClock clock(50.0);
  util::BackoffParams p;
  util::Backoff b(p, 1);
  EXPECT_DOUBLE_EQ(b.sleep(util::Deadline::at(10.0)), 0.0);
  // The attempt (and its jitter draw) still happened — the delay sequence is
  // a pure function of the retry count, deadline or not.
  EXPECT_EQ(b.attempts(), 1);
}

TEST(FakeClock, AutoAdvanceChargesPerRead) {
  util::ScopedFakeClock clock(0.0);
  clock.set_auto_advance(0.5);
  EXPECT_DOUBLE_EQ(util::mono_now_s(), 0.0);
  EXPECT_DOUBLE_EQ(util::mono_now_s(), 0.5);
  EXPECT_DOUBLE_EQ(util::mono_now_s(), 1.0);
  clock.advance(10.0);
  EXPECT_DOUBLE_EQ(util::mono_now_s(), 11.5);
}

// --- simplex-level timeout --------------------------------------------------

// A maximization packing LP with enough coupling to need a healthy pivot
// count: n variables, `rows` random <= constraints over them.
void build_packing_lp(solver::Model& m, int n, int rows, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<solver::VarId> x;
  x.reserve(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    x.push_back(m.add_var(0.0, 10.0, rng.uniform(1.0, 2.0)));
  }
  for (int i = 0; i < rows; ++i) {
    solver::LinExpr lhs;
    for (int j = 0; j < n; ++j) {
      if (rng.bernoulli(0.4)) lhs += rng.uniform(0.1, 1.0) * x[(std::size_t)j];
    }
    m.add_constr(lhs, solver::Sense::kLe, rng.uniform(5.0, 20.0));
  }
  m.set_maximize();
}

TEST(SimplexDeadline, ToStringCoversTimedOut) {
  EXPECT_STREQ(solver::to_string(solver::LpStatus::kTimedOut), "timed-out");
  EXPECT_STREQ(solver::to_string(solver::SolveStatus::kTimedOut), "timed-out");
}

TEST(SimplexDeadline, PreExpiredDeadlineTimesOutWithBasis) {
  util::ScopedFakeClock clock(10.0);
  solver::Model m;
  build_packing_lp(m, 40, 30, 11);
  m.simplex_options().deadline = util::Deadline::at(5.0);  // already past
  const auto r = m.solve();
  EXPECT_EQ(r.status, solver::SolveStatus::kTimedOut);
  // Not a hard failure: the best (here: initial) basis is still reported so
  // the caller can warm-start a retry.
  EXPECT_FALSE(r.basis.empty());
}

TEST(SimplexDeadline, UnbudgetedSolveIgnoresTheClockEntirely) {
  // No deadline set => the solve must not consult the clock at all (this is
  // what keeps unbudgeted runs bit-identical to the pre-deadline repo). An
  // auto-advancing fake clock makes any stray read visible as elapsed time.
  util::ScopedFakeClock clock(0.0);
  clock.set_auto_advance(1.0);
  solver::Model m;
  build_packing_lp(m, 40, 30, 11);
  const auto r = m.solve();
  EXPECT_EQ(r.status, solver::SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(clock.now_s(), 0.0);
}

TEST(SimplexDeadline, AmbientGuardsComposeByEarliestExpiry) {
  util::ScopedFakeClock clock(0.0);
  EXPECT_FALSE(solver::ScopedSolveDeadline::active_deadline().is_set());
  solver::ScopedSolveDeadline outer(util::Deadline::at(5.0));
  {
    solver::ScopedSolveDeadline looser(util::Deadline::at(8.0));
    // An inner guard can never loosen the outer budget.
    EXPECT_DOUBLE_EQ(solver::ScopedSolveDeadline::active_deadline().expiry_s(),
                     5.0);
    solver::ScopedSolveDeadline tighter(util::Deadline::at(3.0));
    EXPECT_DOUBLE_EQ(solver::ScopedSolveDeadline::active_deadline().expiry_s(),
                     3.0);
  }
  EXPECT_DOUBLE_EQ(solver::ScopedSolveDeadline::active_deadline().expiry_s(),
                   5.0);
}

TEST(SimplexDeadline, TimeoutIsCountedOnEveryGuardInTheChain) {
  util::ScopedFakeClock clock(10.0);
  solver::ScopedSolveDeadline run_guard(util::Deadline::at(5.0));
  {
    solver::ScopedSolveDeadline rung_guard(util::Deadline::at(7.0));
    solver::Model m;
    build_packing_lp(m, 30, 20, 3);
    const auto r = m.solve();  // no per-solve deadline; ambient one applies
    EXPECT_EQ(r.status, solver::SolveStatus::kTimedOut);
    EXPECT_EQ(rung_guard.timeouts(), 1);
  }
  EXPECT_EQ(run_guard.timeouts(), 1);
}

TEST(SimplexDeadline, BestBasisWarmStartsTheRetry) {
  // Cold reference: how many pivots the LP takes with no budget.
  solver::Model cold;
  build_packing_lp(cold, 60, 48, 23);
  const auto full = cold.solve();
  ASSERT_EQ(full.status, solver::SolveStatus::kOptimal);
  ASSERT_GT(full.simplex_iterations, 12);

  // Budgeted attempt: every deadline check costs one fake-clock read of 1s
  // and the solve checks every pivot, so a budget of (cold pivots - 4) stops
  // the solve deterministically a few pivots short of optimal.
  solver::SolveResult partial;
  {
    util::ScopedFakeClock clock(0.0);
    clock.set_auto_advance(1.0);
    solver::Model m;
    build_packing_lp(m, 60, 48, 23);
    m.simplex_options().deadline =
        util::Deadline::after(full.simplex_iterations - 4 + 0.5);
    m.simplex_options().deadline_check_interval = 1;
    partial = m.solve();
    ASSERT_EQ(partial.status, solver::SolveStatus::kTimedOut);
    ASSERT_FALSE(partial.basis.empty());
    EXPECT_LT(partial.simplex_iterations, full.simplex_iterations);
  }

  // Retry from the partial basis: same optimum, strictly fewer pivots than
  // the cold solve — the timed-out work was not thrown away.
  solver::Model retry;
  build_packing_lp(retry, 60, 48, 23);
  const auto warm = retry.solve(&partial.basis);
  ASSERT_EQ(warm.status, solver::SolveStatus::kOptimal);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_DOUBLE_EQ(warm.objective, full.objective);
  EXPECT_LT(warm.simplex_iterations, full.simplex_iterations);
}

// --- timed-out TE solves are thread-count invariant --------------------------

struct TeWorkload {
  topo::Network net;
  std::vector<traffic::TrafficMatrix> matrices;
  std::vector<scenario::Scenario> scenarios;
  te::TunnelParams tunnels;
  std::unique_ptr<te::TeInput> input;

  TeWorkload() : net(topo::build_b4()) {
    util::Rng rng(404);
    traffic::TrafficParams tp;
    tp.num_matrices = 1;
    matrices = traffic::generate_traffic(net, tp, rng);
    scenario::ScenarioParams sp;
    sp.probability_cutoff = 0.005;
    auto set = scenario::generate_scenarios(net, sp, rng);
    scenarios = scenario::remove_disconnecting(net, set.scenarios);
    tunnels.tunnels_per_flow = 4;
    input = std::make_unique<te::TeInput>(net, matrices[0], scenarios, tunnels);
    input->scale_demands(te::max_satisfiable_scale(*input) * 0.6);
  }
};

TEST(SimplexDeadline, TimedOutTeSolveIsThreadCountInvariant) {
  TeWorkload w;
  te::ArrowParams params;
  params.tickets.num_tickets = 4;
  util::ThreadPool prep_pool(1);
  util::Rng prep_rng(99);
  const auto prepared = te::prepare_arrow(*w.input, params, prep_rng, prep_pool);

  // Under a frozen clock and a pre-expired ambient deadline, every LP the TE
  // solve issues times out at its first deadline check. The degraded result
  // must still be a bit-identical function of the input at any thread count
  // (the pool only parallelizes the model build, never the pivoting).
  te::TeSolution base;
  int base_timeouts = -1;
  bool have_base = false;
  for (int threads : {1, 2, 8}) {
    util::ScopedFakeClock clock(100.0);
    solver::ScopedSolveDeadline guard(util::Deadline::at(0.0));
    util::ThreadPool pool(threads);
    const te::TeSolution got = te::solve_arrow(*w.input, prepared, params, pool);
    EXPECT_FALSE(got.optimal) << "threads=" << threads;
    EXPECT_GT(guard.timeouts(), 0) << "threads=" << threads;
    if (!have_base) {
      base = got;
      base_timeouts = guard.timeouts();
      have_base = true;
      continue;
    }
    EXPECT_EQ(guard.timeouts(), base_timeouts) << "threads=" << threads;
    EXPECT_EQ(got.objective, base.objective) << "threads=" << threads;
    EXPECT_EQ(got.simplex_iterations, base.simplex_iterations)
        << "threads=" << threads;
    EXPECT_EQ(got.admitted, base.admitted) << "threads=" << threads;
    ASSERT_EQ(got.alloc.size(), base.alloc.size()) << "threads=" << threads;
    for (std::size_t f = 0; f < base.alloc.size(); ++f) {
      EXPECT_EQ(got.alloc[f], base.alloc[f])
          << "flow " << f << " threads=" << threads;
    }
  }
}

// --- the ladder under a shrinking budget -------------------------------------

class LadderFixture : public ::testing::Test {
 protected:
  LadderFixture() : net_(topo::build_b4()) {
    util::Rng rng(7);
    traffic::TrafficParams tp;
    tp.num_matrices = 2;
    tms_ = traffic::generate_traffic(net_, tp, rng);
    config_.horizon_s = 2.0 * 3600.0;
    config_.te_interval_s = 600.0;
    config_.tunnels.tunnels_per_flow = 4;
    config_.arrow.tickets.num_tickets = 4;
    config_.scenarios.probability_cutoff = 0.002;
    config_.demand_scale = 0.5;
    config_.scheme = ctrl::Scheme::kArrow;
  }
  topo::Network net_;
  std::vector<traffic::TrafficMatrix> tms_;
  ctrl::ControllerConfig config_;
};

TEST_F(LadderFixture, ShrinkingBudgetDegradesButEveryPeriodIsServed) {
  // Every clock read costs 50 virtual ms against a 200ms period budget: the
  // primary rung's share (half) dies within a couple of deadline checks, the
  // relaxed retry and FFC rungs likewise, and the ladder must land on the
  // closed-form rungs — never on "no plan".
  util::ScopedFakeClock clock(0.0);
  clock.set_auto_advance(0.05);
  config_.te_budget_s = 0.2;
  util::Rng rng(5);
  const auto report = ctrl::run_controller(net_, tms_, {}, config_, rng);

  ASSERT_GT(report.te_runs, 0);
  int served = 0;
  for (int c : report.fallback_counts) served += c;
  EXPECT_EQ(served, report.te_runs);  // every period attributed to a rung
  EXPECT_EQ(report.fallback_counts[static_cast<int>(ctrl::Rung::kPrimary)], 0);
  EXPECT_GT(report.solver_timeouts, 0);
  EXPECT_GT(report.degraded_periods, 0);
  EXPECT_GT(report.deadline_overruns, 0);
  EXPECT_EQ(static_cast<int>(report.rung_by_matrix.size()), report.te_runs);

  // Timeout accounting must flow into the RunReport exactly.
  EXPECT_EQ(report.run_report.solver_timeouts, report.solver_timeouts);
  EXPECT_EQ(report.run_report.backoff_retries, report.backoff_retries);
  EXPECT_EQ(report.run_report.deadline_overruns, report.deadline_overruns);
  EXPECT_FALSE(report.canceled);
}

TEST_F(LadderFixture, GenerousBudgetStaysOnThePrimaryRung) {
  // Frozen clock: deadlines exist but never expire, so the enforced budget
  // changes nothing relative to an unbudgeted run.
  util::ScopedFakeClock clock(0.0);
  config_.te_budget_s = 3600.0;
  util::Rng rng(5);
  const auto report = ctrl::run_controller(net_, tms_, {}, config_, rng);

  ASSERT_GT(report.te_runs, 0);
  EXPECT_EQ(report.fallback_counts[static_cast<int>(ctrl::Rung::kPrimary)],
            report.te_runs);
  EXPECT_EQ(report.solver_timeouts, 0);
  EXPECT_EQ(report.degraded_periods, 0);
  EXPECT_EQ(report.run_report.solver_timeouts, 0);
}

TEST_F(LadderFixture, CancellationDrainsGracefully) {
  int polls = 0;
  // Cancel after the first matrix: the remaining periods must be served by
  // the closed-form rungs with no further LP work, and the run must still
  // complete its accounting.
  config_.cancel = [&polls]() { return ++polls > 1; };
  util::Rng rng(5);
  const auto report = ctrl::run_controller(net_, tms_, {}, config_, rng);

  ASSERT_GT(report.te_runs, 1);
  EXPECT_TRUE(report.canceled);
  EXPECT_TRUE(report.run_report.canceled);
  int served = 0;
  for (int c : report.fallback_counts) served += c;
  EXPECT_EQ(served, report.te_runs);
  // At least one period ran before the cancel fired...
  EXPECT_GT(report.fallback_counts[static_cast<int>(ctrl::Rung::kPrimary)], 0);
  // ...and at least one after it, on a closed-form rung.
  const int closed_form =
      report.fallback_counts[static_cast<int>(ctrl::Rung::kCarryForward)] +
      report.fallback_counts[static_cast<int>(ctrl::Rung::kEcmp)];
  EXPECT_GT(closed_form, 0);
}

}  // namespace
}  // namespace arrow
