file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_roadm_count.dir/bench_fig19_roadm_count.cc.o"
  "CMakeFiles/bench_fig19_roadm_count.dir/bench_fig19_roadm_count.cc.o.d"
  "bench_fig19_roadm_count"
  "bench_fig19_roadm_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_roadm_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
