# Empty compiler generated dependencies file for bench_fig19_roadm_count.
# This may be replaced when dependencies are built.
