# Empty dependencies file for bench_ablation_phase1_vs_ilp.
# This may be replaced when dependencies are built.
