file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_phase1_vs_ilp.dir/bench_ablation_phase1_vs_ilp.cc.o"
  "CMakeFiles/bench_ablation_phase1_vs_ilp.dir/bench_ablation_phase1_vs_ilp.cc.o.d"
  "bench_ablation_phase1_vs_ilp"
  "bench_ablation_phase1_vs_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_phase1_vs_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
