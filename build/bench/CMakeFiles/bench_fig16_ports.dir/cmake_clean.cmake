file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_ports.dir/bench_fig16_ports.cc.o"
  "CMakeFiles/bench_fig16_ports.dir/bench_fig16_ports.cc.o.d"
  "bench_fig16_ports"
  "bench_fig16_ports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_ports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
