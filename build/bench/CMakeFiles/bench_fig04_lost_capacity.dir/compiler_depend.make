# Empty compiler generated dependencies file for bench_fig04_lost_capacity.
# This may be replaced when dependencies are built.
