file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_deployment.dir/bench_fig21_deployment.cc.o"
  "CMakeFiles/bench_fig21_deployment.dir/bench_fig21_deployment.cc.o.d"
  "bench_fig21_deployment"
  "bench_fig21_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
