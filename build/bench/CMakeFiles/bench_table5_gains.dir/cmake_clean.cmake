file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_gains.dir/bench_table5_gains.cc.o"
  "CMakeFiles/bench_table5_gains.dir/bench_table5_gains.cc.o.d"
  "bench_table5_gains"
  "bench_table5_gains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_gains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
