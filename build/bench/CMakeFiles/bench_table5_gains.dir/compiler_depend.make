# Empty compiler generated dependencies file for bench_table5_gains.
# This may be replaced when dependencies are built.
