# Empty dependencies file for bench_fig14_tickets.
# This may be replaced when dependencies are built.
