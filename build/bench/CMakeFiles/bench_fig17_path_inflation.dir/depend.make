# Empty dependencies file for bench_fig17_path_inflation.
# This may be replaced when dependencies are built.
