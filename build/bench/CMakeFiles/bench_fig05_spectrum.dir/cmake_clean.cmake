file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_spectrum.dir/bench_fig05_spectrum.cc.o"
  "CMakeFiles/bench_fig05_spectrum.dir/bench_fig05_spectrum.cc.o.d"
  "bench_fig05_spectrum"
  "bench_fig05_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
