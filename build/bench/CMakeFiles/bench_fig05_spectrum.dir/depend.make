# Empty dependencies file for bench_fig05_spectrum.
# This may be replaced when dependencies are built.
