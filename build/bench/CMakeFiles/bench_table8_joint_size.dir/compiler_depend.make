# Empty compiler generated dependencies file for bench_table8_joint_size.
# This may be replaced when dependencies are built.
