# Empty compiler generated dependencies file for bench_fig06_restoration_ratio.
# This may be replaced when dependencies are built.
