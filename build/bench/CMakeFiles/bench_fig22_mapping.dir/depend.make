# Empty dependencies file for bench_fig22_mapping.
# This may be replaced when dependencies are built.
