
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ext_cl_band.cc" "bench/CMakeFiles/bench_ext_cl_band.dir/bench_ext_cl_band.cc.o" "gcc" "bench/CMakeFiles/bench_ext_cl_band.dir/bench_ext_cl_band.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/arrow_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/te/CMakeFiles/arrow_te.dir/DependInfo.cmake"
  "/root/repo/build/src/ticket/CMakeFiles/arrow_ticket.dir/DependInfo.cmake"
  "/root/repo/build/src/optical/CMakeFiles/arrow_optical.dir/DependInfo.cmake"
  "/root/repo/build/src/scenario/CMakeFiles/arrow_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/arrow_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/arrow_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/arrow_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/arrow_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
