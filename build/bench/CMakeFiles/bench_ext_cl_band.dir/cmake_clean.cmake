file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_cl_band.dir/bench_ext_cl_band.cc.o"
  "CMakeFiles/bench_ext_cl_band.dir/bench_ext_cl_band.cc.o.d"
  "bench_ext_cl_band"
  "bench_ext_cl_band.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_cl_band.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
