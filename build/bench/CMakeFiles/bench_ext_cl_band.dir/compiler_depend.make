# Empty compiler generated dependencies file for bench_ext_cl_band.
# This may be replaced when dependencies are built.
