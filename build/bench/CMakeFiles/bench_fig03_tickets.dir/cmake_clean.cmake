file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_tickets.dir/bench_fig03_tickets.cc.o"
  "CMakeFiles/bench_fig03_tickets.dir/bench_fig03_tickets.cc.o.d"
  "bench_fig03_tickets"
  "bench_fig03_tickets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_tickets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
