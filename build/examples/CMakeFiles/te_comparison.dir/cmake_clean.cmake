file(REMOVE_RECURSE
  "CMakeFiles/te_comparison.dir/te_comparison.cpp.o"
  "CMakeFiles/te_comparison.dir/te_comparison.cpp.o.d"
  "te_comparison"
  "te_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/te_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
