# Empty compiler generated dependencies file for te_comparison.
# This may be replaced when dependencies are built.
