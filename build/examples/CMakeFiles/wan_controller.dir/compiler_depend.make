# Empty compiler generated dependencies file for wan_controller.
# This may be replaced when dependencies are built.
