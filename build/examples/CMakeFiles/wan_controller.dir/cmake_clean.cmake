file(REMOVE_RECURSE
  "CMakeFiles/wan_controller.dir/wan_controller.cpp.o"
  "CMakeFiles/wan_controller.dir/wan_controller.cpp.o.d"
  "wan_controller"
  "wan_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
