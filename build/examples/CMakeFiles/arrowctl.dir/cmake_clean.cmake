file(REMOVE_RECURSE
  "CMakeFiles/arrowctl.dir/arrowctl.cpp.o"
  "CMakeFiles/arrowctl.dir/arrowctl.cpp.o.d"
  "arrowctl"
  "arrowctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arrowctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
