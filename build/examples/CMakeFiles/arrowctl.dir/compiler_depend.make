# Empty compiler generated dependencies file for arrowctl.
# This may be replaced when dependencies are built.
