# Empty compiler generated dependencies file for fiber_cut_drill.
# This may be replaced when dependencies are built.
