file(REMOVE_RECURSE
  "CMakeFiles/fiber_cut_drill.dir/fiber_cut_drill.cpp.o"
  "CMakeFiles/fiber_cut_drill.dir/fiber_cut_drill.cpp.o.d"
  "fiber_cut_drill"
  "fiber_cut_drill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fiber_cut_drill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
