file(REMOVE_RECURSE
  "CMakeFiles/arrow_traffic.dir/traffic.cc.o"
  "CMakeFiles/arrow_traffic.dir/traffic.cc.o.d"
  "libarrow_traffic.a"
  "libarrow_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arrow_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
