# Empty compiler generated dependencies file for arrow_traffic.
# This may be replaced when dependencies are built.
