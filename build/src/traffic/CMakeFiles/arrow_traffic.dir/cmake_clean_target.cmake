file(REMOVE_RECURSE
  "libarrow_traffic.a"
)
