file(REMOVE_RECURSE
  "CMakeFiles/arrow_topo.dir/builders.cc.o"
  "CMakeFiles/arrow_topo.dir/builders.cc.o.d"
  "CMakeFiles/arrow_topo.dir/io.cc.o"
  "CMakeFiles/arrow_topo.dir/io.cc.o.d"
  "CMakeFiles/arrow_topo.dir/network.cc.o"
  "CMakeFiles/arrow_topo.dir/network.cc.o.d"
  "CMakeFiles/arrow_topo.dir/provision.cc.o"
  "CMakeFiles/arrow_topo.dir/provision.cc.o.d"
  "libarrow_topo.a"
  "libarrow_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arrow_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
