# Empty compiler generated dependencies file for arrow_topo.
# This may be replaced when dependencies are built.
