file(REMOVE_RECURSE
  "libarrow_topo.a"
)
