# Empty dependencies file for arrow_util.
# This may be replaced when dependencies are built.
