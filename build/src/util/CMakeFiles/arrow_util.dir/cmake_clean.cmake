file(REMOVE_RECURSE
  "CMakeFiles/arrow_util.dir/csv.cc.o"
  "CMakeFiles/arrow_util.dir/csv.cc.o.d"
  "CMakeFiles/arrow_util.dir/stats.cc.o"
  "CMakeFiles/arrow_util.dir/stats.cc.o.d"
  "CMakeFiles/arrow_util.dir/table.cc.o"
  "CMakeFiles/arrow_util.dir/table.cc.o.d"
  "libarrow_util.a"
  "libarrow_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arrow_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
