file(REMOVE_RECURSE
  "libarrow_util.a"
)
