
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optical/event_sim.cc" "src/optical/CMakeFiles/arrow_optical.dir/event_sim.cc.o" "gcc" "src/optical/CMakeFiles/arrow_optical.dir/event_sim.cc.o.d"
  "/root/repo/src/optical/latency.cc" "src/optical/CMakeFiles/arrow_optical.dir/latency.cc.o" "gcc" "src/optical/CMakeFiles/arrow_optical.dir/latency.cc.o.d"
  "/root/repo/src/optical/osnr.cc" "src/optical/CMakeFiles/arrow_optical.dir/osnr.cc.o" "gcc" "src/optical/CMakeFiles/arrow_optical.dir/osnr.cc.o.d"
  "/root/repo/src/optical/paths.cc" "src/optical/CMakeFiles/arrow_optical.dir/paths.cc.o" "gcc" "src/optical/CMakeFiles/arrow_optical.dir/paths.cc.o.d"
  "/root/repo/src/optical/restoration.cc" "src/optical/CMakeFiles/arrow_optical.dir/restoration.cc.o" "gcc" "src/optical/CMakeFiles/arrow_optical.dir/restoration.cc.o.d"
  "/root/repo/src/optical/rwa.cc" "src/optical/CMakeFiles/arrow_optical.dir/rwa.cc.o" "gcc" "src/optical/CMakeFiles/arrow_optical.dir/rwa.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topo/CMakeFiles/arrow_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/arrow_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/arrow_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
