file(REMOVE_RECURSE
  "libarrow_optical.a"
)
