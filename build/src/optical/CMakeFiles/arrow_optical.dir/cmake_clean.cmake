file(REMOVE_RECURSE
  "CMakeFiles/arrow_optical.dir/event_sim.cc.o"
  "CMakeFiles/arrow_optical.dir/event_sim.cc.o.d"
  "CMakeFiles/arrow_optical.dir/latency.cc.o"
  "CMakeFiles/arrow_optical.dir/latency.cc.o.d"
  "CMakeFiles/arrow_optical.dir/osnr.cc.o"
  "CMakeFiles/arrow_optical.dir/osnr.cc.o.d"
  "CMakeFiles/arrow_optical.dir/paths.cc.o"
  "CMakeFiles/arrow_optical.dir/paths.cc.o.d"
  "CMakeFiles/arrow_optical.dir/restoration.cc.o"
  "CMakeFiles/arrow_optical.dir/restoration.cc.o.d"
  "CMakeFiles/arrow_optical.dir/rwa.cc.o"
  "CMakeFiles/arrow_optical.dir/rwa.cc.o.d"
  "libarrow_optical.a"
  "libarrow_optical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arrow_optical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
