# Empty dependencies file for arrow_optical.
# This may be replaced when dependencies are built.
