file(REMOVE_RECURSE
  "CMakeFiles/arrow_controller.dir/controller.cc.o"
  "CMakeFiles/arrow_controller.dir/controller.cc.o.d"
  "libarrow_controller.a"
  "libarrow_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arrow_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
