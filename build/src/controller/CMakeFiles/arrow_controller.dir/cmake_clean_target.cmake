file(REMOVE_RECURSE
  "libarrow_controller.a"
)
