# Empty compiler generated dependencies file for arrow_controller.
# This may be replaced when dependencies are built.
