# Empty dependencies file for arrow_te.
# This may be replaced when dependencies are built.
