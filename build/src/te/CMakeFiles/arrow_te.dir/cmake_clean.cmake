file(REMOVE_RECURSE
  "CMakeFiles/arrow_te.dir/arrow.cc.o"
  "CMakeFiles/arrow_te.dir/arrow.cc.o.d"
  "CMakeFiles/arrow_te.dir/basic.cc.o"
  "CMakeFiles/arrow_te.dir/basic.cc.o.d"
  "CMakeFiles/arrow_te.dir/ffc.cc.o"
  "CMakeFiles/arrow_te.dir/ffc.cc.o.d"
  "CMakeFiles/arrow_te.dir/input.cc.o"
  "CMakeFiles/arrow_te.dir/input.cc.o.d"
  "CMakeFiles/arrow_te.dir/joint.cc.o"
  "CMakeFiles/arrow_te.dir/joint.cc.o.d"
  "CMakeFiles/arrow_te.dir/solution.cc.o"
  "CMakeFiles/arrow_te.dir/solution.cc.o.d"
  "CMakeFiles/arrow_te.dir/teavar.cc.o"
  "CMakeFiles/arrow_te.dir/teavar.cc.o.d"
  "libarrow_te.a"
  "libarrow_te.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arrow_te.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
