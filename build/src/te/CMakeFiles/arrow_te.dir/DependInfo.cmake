
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/te/arrow.cc" "src/te/CMakeFiles/arrow_te.dir/arrow.cc.o" "gcc" "src/te/CMakeFiles/arrow_te.dir/arrow.cc.o.d"
  "/root/repo/src/te/basic.cc" "src/te/CMakeFiles/arrow_te.dir/basic.cc.o" "gcc" "src/te/CMakeFiles/arrow_te.dir/basic.cc.o.d"
  "/root/repo/src/te/ffc.cc" "src/te/CMakeFiles/arrow_te.dir/ffc.cc.o" "gcc" "src/te/CMakeFiles/arrow_te.dir/ffc.cc.o.d"
  "/root/repo/src/te/input.cc" "src/te/CMakeFiles/arrow_te.dir/input.cc.o" "gcc" "src/te/CMakeFiles/arrow_te.dir/input.cc.o.d"
  "/root/repo/src/te/joint.cc" "src/te/CMakeFiles/arrow_te.dir/joint.cc.o" "gcc" "src/te/CMakeFiles/arrow_te.dir/joint.cc.o.d"
  "/root/repo/src/te/solution.cc" "src/te/CMakeFiles/arrow_te.dir/solution.cc.o" "gcc" "src/te/CMakeFiles/arrow_te.dir/solution.cc.o.d"
  "/root/repo/src/te/teavar.cc" "src/te/CMakeFiles/arrow_te.dir/teavar.cc.o" "gcc" "src/te/CMakeFiles/arrow_te.dir/teavar.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ticket/CMakeFiles/arrow_ticket.dir/DependInfo.cmake"
  "/root/repo/build/src/optical/CMakeFiles/arrow_optical.dir/DependInfo.cmake"
  "/root/repo/build/src/scenario/CMakeFiles/arrow_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/arrow_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/arrow_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/arrow_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/arrow_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
