file(REMOVE_RECURSE
  "libarrow_te.a"
)
