# Empty compiler generated dependencies file for arrow_solver.
# This may be replaced when dependencies are built.
