file(REMOVE_RECURSE
  "libarrow_solver.a"
)
