file(REMOVE_RECURSE
  "CMakeFiles/arrow_solver.dir/basis.cc.o"
  "CMakeFiles/arrow_solver.dir/basis.cc.o.d"
  "CMakeFiles/arrow_solver.dir/model.cc.o"
  "CMakeFiles/arrow_solver.dir/model.cc.o.d"
  "CMakeFiles/arrow_solver.dir/simplex.cc.o"
  "CMakeFiles/arrow_solver.dir/simplex.cc.o.d"
  "libarrow_solver.a"
  "libarrow_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arrow_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
