file(REMOVE_RECURSE
  "libarrow_ticket.a"
)
