file(REMOVE_RECURSE
  "CMakeFiles/arrow_ticket.dir/ticket.cc.o"
  "CMakeFiles/arrow_ticket.dir/ticket.cc.o.d"
  "libarrow_ticket.a"
  "libarrow_ticket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arrow_ticket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
