# Empty compiler generated dependencies file for arrow_ticket.
# This may be replaced when dependencies are built.
