file(REMOVE_RECURSE
  "libarrow_sim.a"
)
