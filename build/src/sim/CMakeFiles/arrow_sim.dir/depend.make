# Empty dependencies file for arrow_sim.
# This may be replaced when dependencies are built.
