file(REMOVE_RECURSE
  "CMakeFiles/arrow_sim.dir/availability.cc.o"
  "CMakeFiles/arrow_sim.dir/availability.cc.o.d"
  "CMakeFiles/arrow_sim.dir/cost.cc.o"
  "CMakeFiles/arrow_sim.dir/cost.cc.o.d"
  "CMakeFiles/arrow_sim.dir/sweep.cc.o"
  "CMakeFiles/arrow_sim.dir/sweep.cc.o.d"
  "CMakeFiles/arrow_sim.dir/tickets.cc.o"
  "CMakeFiles/arrow_sim.dir/tickets.cc.o.d"
  "libarrow_sim.a"
  "libarrow_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arrow_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
