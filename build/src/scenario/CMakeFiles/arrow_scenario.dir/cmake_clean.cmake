file(REMOVE_RECURSE
  "CMakeFiles/arrow_scenario.dir/scenario.cc.o"
  "CMakeFiles/arrow_scenario.dir/scenario.cc.o.d"
  "libarrow_scenario.a"
  "libarrow_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arrow_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
