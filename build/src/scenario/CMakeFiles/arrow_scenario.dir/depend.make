# Empty dependencies file for arrow_scenario.
# This may be replaced when dependencies are built.
