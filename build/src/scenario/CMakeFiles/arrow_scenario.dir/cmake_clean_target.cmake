file(REMOVE_RECURSE
  "libarrow_scenario.a"
)
