# Empty compiler generated dependencies file for optical_paths_test.
# This may be replaced when dependencies are built.
