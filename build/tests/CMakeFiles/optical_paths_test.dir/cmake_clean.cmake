file(REMOVE_RECURSE
  "CMakeFiles/optical_paths_test.dir/optical_paths_test.cc.o"
  "CMakeFiles/optical_paths_test.dir/optical_paths_test.cc.o.d"
  "optical_paths_test"
  "optical_paths_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optical_paths_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
