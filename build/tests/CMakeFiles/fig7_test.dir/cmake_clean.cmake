file(REMOVE_RECURSE
  "CMakeFiles/fig7_test.dir/fig7_test.cc.o"
  "CMakeFiles/fig7_test.dir/fig7_test.cc.o.d"
  "fig7_test"
  "fig7_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
