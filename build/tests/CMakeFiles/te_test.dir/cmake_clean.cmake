file(REMOVE_RECURSE
  "CMakeFiles/te_test.dir/te_test.cc.o"
  "CMakeFiles/te_test.dir/te_test.cc.o.d"
  "te_test"
  "te_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/te_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
