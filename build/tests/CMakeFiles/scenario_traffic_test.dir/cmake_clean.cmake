file(REMOVE_RECURSE
  "CMakeFiles/scenario_traffic_test.dir/scenario_traffic_test.cc.o"
  "CMakeFiles/scenario_traffic_test.dir/scenario_traffic_test.cc.o.d"
  "scenario_traffic_test"
  "scenario_traffic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_traffic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
