# Empty dependencies file for scenario_traffic_test.
# This may be replaced when dependencies are built.
