# Empty dependencies file for osnr_test.
# This may be replaced when dependencies are built.
