file(REMOVE_RECURSE
  "CMakeFiles/osnr_test.dir/osnr_test.cc.o"
  "CMakeFiles/osnr_test.dir/osnr_test.cc.o.d"
  "osnr_test"
  "osnr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osnr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
