# Empty dependencies file for rwa_test.
# This may be replaced when dependencies are built.
