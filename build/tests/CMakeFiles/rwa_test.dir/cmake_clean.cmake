file(REMOVE_RECURSE
  "CMakeFiles/rwa_test.dir/rwa_test.cc.o"
  "CMakeFiles/rwa_test.dir/rwa_test.cc.o.d"
  "rwa_test"
  "rwa_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rwa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
