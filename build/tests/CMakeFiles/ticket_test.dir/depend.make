# Empty dependencies file for ticket_test.
# This may be replaced when dependencies are built.
