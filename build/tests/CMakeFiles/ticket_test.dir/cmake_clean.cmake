file(REMOVE_RECURSE
  "CMakeFiles/ticket_test.dir/ticket_test.cc.o"
  "CMakeFiles/ticket_test.dir/ticket_test.cc.o.d"
  "ticket_test"
  "ticket_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ticket_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
